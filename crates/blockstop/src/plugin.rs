//! The BlockStop checker plugin for `ivy-engine`.
//!
//! BlockStop is inherently whole-program — atomic context flows *down* the
//! call graph from interrupt handlers, may-block facts flow *up* from
//! sleeping primitives — so the adapter demands one [`BlockStopReport`]
//! through the typed query layer ([`ReportQuery`], keyed by the analysis
//! configuration, reusing the db's points-to results and call graph) and
//! attributes findings to their caller function at the flagged call-site
//! span. The report is a [`DurableQuery`]: with a persist layer attached,
//! a warm process reloads it from `target/ivy-cache/` instead of solving
//! points-to again. The cache fingerprint folds in the caller-derived
//! state a finding depends on beyond the function's callee cone: the
//! function's atomic/may-block membership and its own finding set.

use crate::analysis::{AtomicReason, BlockStop, BlockStopConfig, BlockStopReport, Finding};
use ivy_analysis::pointsto::Sensitivity;
use ivy_analysis::summary::{fnv1a, mix};
use ivy_cmir::ast::Function;
use ivy_engine::json::{Map, Value};
use ivy_engine::persist::{
    span_from_value, span_to_value, string_set_from_value, string_vec_from_value, strings_to_value,
};
use ivy_engine::{
    AnalysisCtx, Checker, Diagnostic, DurableQuery, Query, QueryDb, QueryKey, Severity,
};
use std::sync::Arc;

impl QueryKey for BlockStopConfig {
    fn stable_hash(&self) -> u64 {
        let mut h = fnv1a(self.sensitivity.name().as_bytes());
        for name in &self.asserted_functions {
            h = mix(h, fnv1a(name.as_bytes()));
        }
        h
    }
}

/// The whole-program BlockStop report as a typed query, keyed by the
/// analysis configuration.
pub struct ReportQuery;

impl Query for ReportQuery {
    type Key = BlockStopConfig;
    type Value = BlockStopReport;
    const NAME: &'static str = "blockstop/report";

    fn compute(db: &QueryDb, key: &BlockStopConfig) -> BlockStopReport {
        let sens = key.sensitivity;
        let pts = db.pointsto(sens);
        let cg = db.callgraph(sens);
        BlockStop::with_config(key.clone()).analyze_with(&db.program, &pts, &cg)
    }
}

impl DurableQuery for ReportQuery {
    const FORMAT_VERSION: u32 = 1;

    fn durable_key(db: &QueryDb, key: &BlockStopConfig) -> u64 {
        // Whole-program artifact: valid exactly for this program content.
        mix(db.program_hash, key.stable_hash())
    }

    fn encode(report: &BlockStopReport) -> Value {
        let findings: Vec<Value> = report
            .findings
            .iter()
            .map(|f| {
                let mut m = Map::new();
                m.insert("caller".into(), Value::from(f.caller.as_str()));
                m.insert("callee_text".into(), Value::from(f.callee_text.as_str()));
                m.insert(
                    "blocking_targets".into(),
                    strings_to_value(&f.blocking_targets),
                );
                m.insert("reason".into(), Value::from(f.reason.name()));
                m.insert("example_chain".into(), strings_to_value(&f.example_chain));
                m.insert("span".into(), span_to_value(&f.span));
                Value::Object(m)
            })
            .collect();
        let mut root = Map::new();
        root.insert("may_block".into(), strings_to_value(&report.may_block));
        root.insert("seeds".into(), strings_to_value(&report.seeds));
        root.insert(
            "atomic_functions".into(),
            strings_to_value(&report.atomic_functions),
        );
        root.insert("findings".into(), Value::Array(findings));
        root.insert(
            "callgraph_edges".into(),
            Value::from(report.callgraph_edges),
        );
        root.insert(
            "unresolved_indirect_sites".into(),
            Value::from(report.unresolved_indirect_sites),
        );
        root.insert(
            "suppressed_by_assert".into(),
            Value::from(report.suppressed_by_assert),
        );
        Value::Object(root)
    }

    fn decode(raw: &Value) -> Option<BlockStopReport> {
        let findings = raw
            .get("findings")?
            .as_array()?
            .iter()
            .map(|f| {
                Some(Finding {
                    caller: f.get("caller")?.as_str()?.to_string(),
                    callee_text: f.get("callee_text")?.as_str()?.to_string(),
                    blocking_targets: string_set_from_value(f.get("blocking_targets")?)?,
                    reason: AtomicReason::from_name(f.get("reason")?.as_str()?)?,
                    example_chain: string_vec_from_value(f.get("example_chain")?)?,
                    span: span_from_value(f.get("span")?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(BlockStopReport {
            may_block: string_set_from_value(raw.get("may_block")?)?,
            seeds: string_set_from_value(raw.get("seeds")?)?,
            atomic_functions: string_set_from_value(raw.get("atomic_functions")?)?,
            findings,
            callgraph_edges: raw.get("callgraph_edges")?.as_u64()? as usize,
            unresolved_indirect_sites: raw.get("unresolved_indirect_sites")?.as_u64()? as usize,
            suppressed_by_assert: raw.get("suppressed_by_assert")?.as_u64()?,
        })
    }
}

/// BlockStop as an engine plugin.
#[derive(Debug, Clone, Default)]
pub struct BlockStopChecker {
    /// The analysis configuration (sensitivity, asserted functions).
    pub config: BlockStopConfig,
}

impl BlockStopChecker {
    /// A plugin with the default configuration.
    pub fn new() -> BlockStopChecker {
        BlockStopChecker::default()
    }

    /// A plugin with a specific configuration.
    pub fn with_config(config: BlockStopConfig) -> BlockStopChecker {
        BlockStopChecker { config }
    }

    fn config_hash(&self) -> u64 {
        self.config.stable_hash()
    }

    /// The whole-program report for a shared context, demanded through the
    /// durable query layer. Exposed so the pipeline can reuse the exact
    /// report the plugin produced.
    pub fn report(&self, ctx: &AnalysisCtx) -> Arc<BlockStopReport> {
        ctx.get_durable::<ReportQuery>(&self.config)
    }

    fn finding_to_diagnostic(&self, finding: &Finding) -> Diagnostic {
        let targets: Vec<&str> = finding
            .blocking_targets
            .iter()
            .map(String::as_str)
            .collect();
        let chain = finding.example_chain.join(" -> ");
        Diagnostic {
            checker: "blockstop".into(),
            code: "blockstop/atomic-call".into(),
            function: finding.caller.clone(),
            severity: Severity::Error,
            message: format!(
                "call to `{}` may block in atomic context ({:?}); blocking targets: [{}]; example chain: {}",
                finding.callee_text,
                finding.reason,
                targets.join(", "),
                chain
            ),
            span: finding.span.is_real().then_some(finding.span),
            fix_hint: Some(format!(
                "fix the call path, or insert a run-time `__assert_may_block` at the entry of `{}` and list it in BlockStopConfig::asserted_functions if this is a false positive",
                finding.blocking_targets.iter().next().unwrap_or(&finding.callee_text)
            )),
            // Cite what the verdict rests on: the atomic-region call path
            // that reaches a blocking primitive, and (for indirect calls)
            // the resolved target set — a points-to fact `ivy-client
            // explain` can expand into a full derivation chain.
            evidence: {
                let mut ev = vec![ivy_engine::Evidence::new(
                    "atomic-path",
                    finding.caller.clone(),
                    chain.clone(),
                )];
                if !finding.blocking_targets.is_empty() {
                    ev.push(ivy_engine::Evidence::new(
                        "indirect-targets",
                        format!("{}::{}", finding.caller, finding.callee_text),
                        targets.join(", "),
                    ));
                }
                ev
            },
        }
    }
}

impl Checker for BlockStopChecker {
    fn name(&self) -> &'static str {
        "blockstop"
    }

    fn sensitivity(&self) -> Sensitivity {
        self.config.sensitivity
    }

    fn context_fingerprint(&self, ctx: &AnalysisCtx, func: &Function) -> u64 {
        // Atomic context and finding attribution depend on *callers*, which
        // the cone hash cannot see; hash the function's slice of the
        // memoized report so cached diagnostics are replayed only when they
        // would be recomputed identically.
        let report = self.report(ctx);
        let mut h = self.config_hash();
        h = mix(h, u64::from(report.may_block.contains(&func.name)));
        h = mix(h, u64::from(report.atomic_functions.contains(&func.name)));
        for finding in report.findings.iter().filter(|f| f.caller == func.name) {
            h = mix(h, fnv1a(format!("{finding:?}").as_bytes()));
        }
        h
    }

    fn check_function(&self, ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
        let report = self.report(ctx);
        report
            .findings
            .iter()
            .filter(|f| f.caller == func.name)
            .map(|f| self.finding_to_diagnostic(f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    #[test]
    fn report_roundtrips_through_the_durable_encoding() {
        let p = parse_program(
            r#"
            extern fn spin_lock_irqsave(l: u32 *);
            extern fn spin_unlock_irqrestore(l: u32 *);
            #[blocking]
            extern fn wait_for_completion(x: u32 *);
            global lock: u32 = 0;
            global done: u32 = 0;
            fn bad() {
                spin_lock_irqsave(&lock);
                wait_for_completion(&done);
                spin_unlock_irqrestore(&lock);
            }
            "#,
        )
        .unwrap();
        let report = BlockStop::new().analyze(&p);
        assert!(!report.findings.is_empty());
        let decoded = <ReportQuery as DurableQuery>::decode(&ReportQuery::encode(&report))
            .expect("well-formed encoding decodes");
        assert_eq!(decoded.findings, report.findings);
        assert_eq!(decoded.may_block, report.may_block);
        assert_eq!(decoded.atomic_functions, report.atomic_functions);
        assert_eq!(decoded.suppressed_by_assert, report.suppressed_by_assert);
        // Spans survive the roundtrip (they feed SARIF line accuracy).
        assert!(decoded.findings[0].span.is_real());
        // Tampering is rejected.
        assert!(<ReportQuery as DurableQuery>::decode(&Value::from(3u64)).is_none());
    }

    #[test]
    fn diagnostics_carry_call_site_spans() {
        let p = parse_program(
            r#"
            #[blocking]
            extern fn msleep(ms: u32);
            #[irq_handler]
            fn tick() {
                msleep(10);
            }
            "#,
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let checker = BlockStopChecker::new();
        let func = ctx.program.function("tick").unwrap();
        let diags = checker.check_function(&ctx, func);
        assert_eq!(diags.len(), 1);
        let span = diags[0].span.expect("parsed program yields a span");
        assert_ne!(
            span, func.span,
            "the diagnostic points at the call statement, not the function"
        );
    }
}
