//! The BlockStop checker plugin for `ivy-engine`.
//!
//! BlockStop is inherently whole-program — atomic context flows *down* the
//! call graph from interrupt handlers, may-block facts flow *up* from
//! sleeping primitives — so the adapter memoizes one [`BlockStopReport`] in
//! the shared [`AnalysisCtx`] (reusing the context's points-to results and
//! call graph instead of recomputing its own) and attributes findings to
//! their caller function. The cache fingerprint folds in the caller-derived
//! state a finding depends on beyond the function's callee cone: the
//! function's atomic/may-block membership and its own finding set.

use crate::analysis::{BlockStop, BlockStopConfig, BlockStopReport, Finding};
use ivy_analysis::pointsto::Sensitivity;
use ivy_analysis::summary::{fnv1a, mix};
use ivy_cmir::ast::Function;
use ivy_engine::{AnalysisCtx, Checker, Diagnostic, Severity};
use std::sync::Arc;

/// BlockStop as an engine plugin.
#[derive(Debug, Clone, Default)]
pub struct BlockStopChecker {
    /// The analysis configuration (sensitivity, asserted functions).
    pub config: BlockStopConfig,
}

impl BlockStopChecker {
    /// A plugin with the default configuration.
    pub fn new() -> BlockStopChecker {
        BlockStopChecker::default()
    }

    /// A plugin with a specific configuration.
    pub fn with_config(config: BlockStopConfig) -> BlockStopChecker {
        BlockStopChecker { config }
    }

    fn config_hash(&self) -> u64 {
        let mut h = fnv1a(self.config.sensitivity.name().as_bytes());
        for name in &self.config.asserted_functions {
            h = mix(h, fnv1a(name.as_bytes()));
        }
        h
    }

    /// The memoized whole-program report for a shared context. Exposed so
    /// the pipeline can reuse the exact report the plugin produced.
    pub fn report(&self, ctx: &AnalysisCtx) -> Arc<BlockStopReport> {
        let key = format!("blockstop/report/{:016x}", self.config_hash());
        ctx.memo(&key, || {
            let sens = self.config.sensitivity;
            let pts = ctx.pointsto(sens);
            let cg = ctx.callgraph(sens);
            BlockStop::with_config(self.config.clone()).analyze_with(&ctx.program, &pts, &cg)
        })
    }

    fn finding_to_diagnostic(&self, finding: &Finding) -> Diagnostic {
        let targets: Vec<&str> = finding
            .blocking_targets
            .iter()
            .map(String::as_str)
            .collect();
        let chain = finding.example_chain.join(" -> ");
        Diagnostic {
            checker: "blockstop".into(),
            code: "blockstop/atomic-call".into(),
            function: finding.caller.clone(),
            severity: Severity::Error,
            message: format!(
                "call to `{}` may block in atomic context ({:?}); blocking targets: [{}]; example chain: {}",
                finding.callee_text,
                finding.reason,
                targets.join(", "),
                chain
            ),
            span: None,
            fix_hint: Some(format!(
                "fix the call path, or insert a run-time `__assert_may_block` at the entry of `{}` and list it in BlockStopConfig::asserted_functions if this is a false positive",
                finding.blocking_targets.iter().next().unwrap_or(&finding.callee_text)
            )),
        }
    }
}

impl Checker for BlockStopChecker {
    fn name(&self) -> &'static str {
        "blockstop"
    }

    fn sensitivity(&self) -> Sensitivity {
        self.config.sensitivity
    }

    fn context_fingerprint(&self, ctx: &AnalysisCtx, func: &Function) -> u64 {
        // Atomic context and finding attribution depend on *callers*, which
        // the cone hash cannot see; hash the function's slice of the
        // memoized report so cached diagnostics are replayed only when they
        // would be recomputed identically.
        let report = self.report(ctx);
        let mut h = self.config_hash();
        h = mix(h, u64::from(report.may_block.contains(&func.name)));
        h = mix(h, u64::from(report.atomic_functions.contains(&func.name)));
        for finding in report.findings.iter().filter(|f| f.caller == func.name) {
            h = mix(h, fnv1a(format!("{finding:?}").as_bytes()));
        }
        h
    }

    fn check_function(&self, ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
        let report = self.report(ctx);
        report
            .findings
            .iter()
            .filter(|f| f.caller == func.name)
            .map(|f| self.finding_to_diagnostic(f))
            .collect()
    }
}
