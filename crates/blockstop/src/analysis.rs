//! The BlockStop whole-program analysis (§2.3 of the paper).
//!
//! BlockStop enforces that "the kernel does not call any functions that may
//! block while interrupts are disabled, such as while holding a spinlock or
//! handling an interrupt". The pipeline is exactly the paper's:
//!
//! 1. seed the `blocking` set from annotations (`#[blocking]`,
//!    `#[blocking_if(flags)]` for allocators) and the known sleeping
//!    primitives;
//! 2. build the call graph, resolving function-pointer calls with the
//!    points-to analysis from `ivy-analysis`;
//! 3. propagate "may block" backwards through the call graph;
//! 4. determine which call sites execute in atomic context (interrupt
//!    handlers, IRQ-disabled regions, spinlock-held regions), including
//!    functions reached transitively from such sites;
//! 5. report every atomic call site whose possible targets may block.
//!
//! False positives are silenced with run-time assertions
//! ([`insert_asserts`]): a function listed in
//! [`BlockStopConfig::asserted_functions`] gets an `__assert_may_block`
//! check at entry, and the static analysis then treats entry into it as
//! guarded (it no longer propagates "may block" to its callers and findings
//! against it are suppressed).

use ivy_analysis::callgraph::CallGraph;
use ivy_analysis::pointsto::{self, Sensitivity};
use ivy_cmir::ast::{Block, Check, Expr, Function, Program, Stmt};
use ivy_cmir::pretty::expr_str;
use ivy_cmir::visit;
use ivy_cmir::Span;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The GFP flag bit that allows an allocation to sleep. Must match
/// `ivy_vm::GFP_WAIT` (the VM's kernel ABI).
pub const GFP_WAIT: i64 = 0x10;

/// Sleeping primitives that seed the blocking set even without annotations
/// (they are VM builtins, so they carry no KC attributes).
pub const BUILTIN_BLOCKING: &[&str] = &[
    "copy_to_user",
    "copy_from_user",
    "schedule",
    "cond_resched",
    "wait_for_completion",
    "mutex_lock",
    "down",
    "msleep",
    "schedule_timeout",
    "vmalloc",
];

/// Builtins that allocate and may sleep depending on their GFP flags.
pub const BUILTIN_BLOCKING_IF_FLAGS: &[&str] = &[
    "kmalloc",
    "kzalloc",
    "kmem_cache_alloc",
    "__get_free_page",
    "alloc_page",
];

/// Builtins that begin an IRQ-disabled or spinlocked region.
pub const ATOMIC_ENTER: &[&str] = &[
    "local_irq_disable",
    "local_irq_save",
    "spin_lock_irqsave",
    "spin_lock_irq",
    "spin_lock",
    "spin_lock_bh",
];

/// Builtins that end an IRQ-disabled or spinlocked region.
pub const ATOMIC_EXIT: &[&str] = &[
    "local_irq_enable",
    "local_irq_restore",
    "spin_unlock_irqrestore",
    "spin_unlock_irq",
    "spin_unlock",
    "spin_unlock_bh",
];

/// Configuration for a BlockStop run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockStopConfig {
    /// Points-to precision used to resolve function-pointer calls.
    pub sensitivity: Sensitivity,
    /// Functions whose entry is guarded by a run-time assertion; findings
    /// against them are silenced (the paper's 15 manual run-time checks).
    pub asserted_functions: BTreeSet<String>,
}

/// A call site that BlockStop flags.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The function making the call (in atomic context).
    pub caller: String,
    /// The callee expression as written (a name, or `ops->read`).
    pub callee_text: String,
    /// The possible targets that may block.
    pub blocking_targets: BTreeSet<String>,
    /// Why the caller is considered atomic here.
    pub reason: AtomicReason,
    /// One call chain from a blocking target down to a blocking seed,
    /// for diagnosis (innermost last).
    pub example_chain: Vec<String>,
    /// Span of the statement containing the flagged call (synthetic when
    /// the program was built programmatically rather than parsed).
    pub span: Span,
}

/// Why a call site is considered to execute in atomic context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtomicReason {
    /// The enclosing function is an interrupt handler.
    InterruptHandler,
    /// The enclosing function is annotated as disabling interrupts.
    DisablesIrq,
    /// The call appears between an IRQ-disable/spinlock acquire and the
    /// matching release inside the function body.
    InsideAtomicRegion,
    /// The enclosing function is reachable from an atomic call site in some
    /// caller.
    CalledFromAtomic,
}

impl AtomicReason {
    /// Stable name used by the persisted report encoding.
    pub fn name(self) -> &'static str {
        match self {
            AtomicReason::InterruptHandler => "interrupt-handler",
            AtomicReason::DisablesIrq => "disables-irq",
            AtomicReason::InsideAtomicRegion => "inside-atomic-region",
            AtomicReason::CalledFromAtomic => "called-from-atomic",
        }
    }

    /// Parses the stable name back (inverse of [`AtomicReason::name`]).
    pub fn from_name(name: &str) -> Option<AtomicReason> {
        match name {
            "interrupt-handler" => Some(AtomicReason::InterruptHandler),
            "disables-irq" => Some(AtomicReason::DisablesIrq),
            "inside-atomic-region" => Some(AtomicReason::InsideAtomicRegion),
            "called-from-atomic" => Some(AtomicReason::CalledFromAtomic),
            _ => None,
        }
    }
}

/// The result of a BlockStop analysis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockStopReport {
    /// Functions that may (transitively) block. These are the annotations the
    /// tool "emits for each function that might eventually call a blocking
    /// function".
    pub may_block: BTreeSet<String>,
    /// The blocking seeds (directly blocking functions).
    pub seeds: BTreeSet<String>,
    /// Functions whose bodies may execute in atomic context.
    pub atomic_functions: BTreeSet<String>,
    /// Flagged call sites.
    pub findings: Vec<Finding>,
    /// Number of call-graph edges considered.
    pub callgraph_edges: usize,
    /// Indirect call sites that resolved to no target (soundness gap, also
    /// includes calls from inline-assembly functions being invisible).
    pub unresolved_indirect_sites: usize,
    /// Findings suppressed because the callee is guarded by a run-time
    /// assertion.
    pub suppressed_by_assert: u64,
}

impl BlockStopReport {
    /// Findings grouped by caller (for report printing).
    pub fn findings_by_caller(&self) -> BTreeMap<String, Vec<&Finding>> {
        let mut map: BTreeMap<String, Vec<&Finding>> = BTreeMap::new();
        for f in &self.findings {
            map.entry(f.caller.clone()).or_default().push(f);
        }
        map
    }

    /// True when a run-time blocking-in-atomic event — `caller` invoked
    /// the blocking `callee` with interrupts disabled or a lock held — is
    /// covered by some finding of this report. The dynamic soundness
    /// oracle checks every VM-observed violation through this predicate;
    /// an uncovered event is a soundness violation of the analysis.
    pub fn covers_runtime_violation(&self, caller: &str, callee: &str) -> bool {
        self.findings.iter().any(|f| {
            f.caller == caller && (f.blocking_targets.contains(callee) || f.callee_text == callee)
        })
    }
}

/// The BlockStop tool.
#[derive(Debug, Clone, Default)]
pub struct BlockStop {
    /// Configuration.
    pub config: BlockStopConfig,
}

/// One call site with evaluated information about its arguments.
#[derive(Debug, Clone)]
struct Site {
    caller: String,
    callee_text: String,
    targets: BTreeSet<String>,
    /// True if this site itself is a direct call to a conditional allocator
    /// with flags that may sleep.
    waits_for_memory: bool,
    /// True if the site sits inside an IRQ-disabled / spinlocked region of
    /// the caller's body.
    in_atomic_region: bool,
    /// Span of the statement containing the call.
    span: Span,
}

impl BlockStop {
    /// Creates a BlockStop instance with default configuration.
    pub fn new() -> Self {
        BlockStop::default()
    }

    /// Creates a BlockStop instance with the given configuration.
    pub fn with_config(config: BlockStopConfig) -> Self {
        BlockStop { config }
    }

    /// Runs the whole-program analysis, computing its own points-to results
    /// and call graph. When several tools run together, prefer
    /// [`BlockStop::analyze_with`] over a shared `ivy_engine::AnalysisCtx`
    /// so those artifacts are computed once.
    pub fn analyze(&self, program: &Program) -> BlockStopReport {
        let pts = pointsto::analyze(program, self.config.sensitivity);
        let callgraph = CallGraph::build(program, &pts);
        self.analyze_with(program, &pts, &callgraph)
    }

    /// Runs the whole-program analysis over precomputed points-to results
    /// and call graph (which must match [`BlockStopConfig::sensitivity`]).
    pub fn analyze_with(
        &self,
        program: &Program,
        pts: &ivy_analysis::PointsToResult,
        callgraph: &CallGraph,
    ) -> BlockStopReport {
        let mut report = BlockStopReport {
            callgraph_edges: callgraph.edge_count(),
            unresolved_indirect_sites: callgraph.unresolved_sites,
            ..BlockStopReport::default()
        };

        // 1. Seeds.
        let mut seeds: BTreeSet<String> = BUILTIN_BLOCKING.iter().map(|s| s.to_string()).collect();
        for f in &program.functions {
            if f.attrs.blocking {
                seeds.insert(f.name.clone());
            }
        }
        report.seeds = seeds.clone();

        // 2. Enumerate call sites with their atomic-region and GFP context.
        let sites = self.collect_sites(program, pts);

        // 3. may_block: backwards propagation. Asserted functions do not
        //    propagate blocking to their callers (their entry is guarded).
        let mut may_block = seeds.clone();
        loop {
            let mut changed = false;
            for site in &sites {
                if may_block.contains(&site.caller) {
                    continue;
                }
                let transitively = site
                    .targets
                    .iter()
                    .any(|t| may_block.contains(t) && !self.config.asserted_functions.contains(t));
                if transitively || site.waits_for_memory {
                    may_block.insert(site.caller.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        report.may_block = may_block.clone();

        // 4. Atomic context: directly-atomic functions, then forward
        //    propagation to everything reachable from an atomic call site.
        let mut atomic: BTreeMap<String, AtomicReason> = BTreeMap::new();
        for f in program.functions.iter().filter(|f| f.body.is_some()) {
            if f.attrs.interrupt_handler {
                atomic.insert(f.name.clone(), AtomicReason::InterruptHandler);
            } else if f.attrs.disables_irq {
                atomic.insert(f.name.clone(), AtomicReason::DisablesIrq);
            }
        }
        let mut queue: VecDeque<String> = atomic.keys().cloned().collect();
        // Also: targets of calls made inside atomic regions become atomic —
        // except functions whose entry is guarded by a run-time assertion
        // (the assertion guarantees they are never actually entered in atomic
        // context, which is how it silences the false positive).
        for site in &sites {
            if site.in_atomic_region {
                for t in &site.targets {
                    if program
                        .function(t)
                        .map(|f| f.body.is_some())
                        .unwrap_or(false)
                        && !atomic.contains_key(t)
                        && !self.config.asserted_functions.contains(t)
                    {
                        atomic.insert(t.clone(), AtomicReason::CalledFromAtomic);
                        queue.push_back(t.clone());
                    }
                }
            }
        }
        while let Some(f) = queue.pop_front() {
            for callee in callgraph.callees(&f) {
                if program
                    .function(&callee)
                    .map(|g| g.body.is_some())
                    .unwrap_or(false)
                    && !atomic.contains_key(&callee)
                    && !self.config.asserted_functions.contains(&callee)
                {
                    atomic.insert(callee.clone(), AtomicReason::CalledFromAtomic);
                    queue.push_back(callee);
                }
            }
        }
        report.atomic_functions = atomic.keys().cloned().collect();

        // 5. Findings: atomic call sites whose targets may block.
        for site in &sites {
            let caller_atomic = atomic.get(&site.caller).copied();
            let site_atomic = site.in_atomic_region || caller_atomic.is_some();
            if !site_atomic {
                continue;
            }
            let mut blocking_targets: BTreeSet<String> = site
                .targets
                .iter()
                .filter(|t| may_block.contains(*t) || seeds.contains(*t))
                .cloned()
                .collect();
            if site.waits_for_memory {
                blocking_targets.insert(site.callee_text.clone());
            }
            if blocking_targets.is_empty() {
                continue;
            }
            let suppressed: BTreeSet<String> = blocking_targets
                .iter()
                .filter(|t| self.config.asserted_functions.contains(*t))
                .cloned()
                .collect();
            if suppressed.len() == blocking_targets.len() {
                report.suppressed_by_assert += 1;
                continue;
            }
            for s in suppressed {
                blocking_targets.remove(&s);
                report.suppressed_by_assert += 1;
            }
            let reason = if site.in_atomic_region {
                AtomicReason::InsideAtomicRegion
            } else {
                caller_atomic.unwrap_or(AtomicReason::InsideAtomicRegion)
            };
            let example_chain = blocking_chain(
                blocking_targets.iter().next().expect("non-empty"),
                callgraph,
                &seeds,
            );
            report.findings.push(Finding {
                caller: site.caller.clone(),
                callee_text: site.callee_text.clone(),
                blocking_targets,
                reason,
                example_chain,
                span: site.span,
            });
        }
        report
    }

    /// Collects every call site with context: resolved targets, whether the
    /// site sits in an IRQ-disabled/spinlocked region, and whether it is a
    /// conditional allocator called with flags that may sleep.
    fn collect_sites(&self, program: &Program, pts: &ivy_analysis::PointsToResult) -> Vec<Site> {
        let mut out = Vec::new();
        for func in program.functions.iter().filter(|f| f.body.is_some()) {
            let body = func.body.as_ref().expect("filtered");
            let mut depth: u32 = if func.attrs.disables_irq { 1 } else { 0 };
            collect_sites_in_block(program, pts, func, body, &mut depth, &mut out);
        }
        out
    }
}

fn collect_sites_in_block(
    program: &Program,
    pts: &ivy_analysis::PointsToResult,
    func: &Function,
    block: &Block,
    depth: &mut u32,
    out: &mut Vec<Site>,
) {
    for stmt in &block.stmts {
        // The statement's span localizes every call inside it — KC
        // expressions carry no spans of their own, so the enclosing
        // statement is the finest line-accurate anchor available.
        let span = stmt.span();
        match stmt {
            Stmt::If(c, t, e, _) => {
                collect_sites_in_expr(program, pts, func, c, *depth, span, out);
                let mut d_then = *depth;
                collect_sites_in_block(program, pts, func, t, &mut d_then, out);
                if let Some(e) = e {
                    let mut d_else = *depth;
                    collect_sites_in_block(program, pts, func, e, &mut d_else, out);
                }
            }
            Stmt::While(c, b, _) => {
                collect_sites_in_expr(program, pts, func, c, *depth, span, out);
                let mut d_body = *depth;
                collect_sites_in_block(program, pts, func, b, &mut d_body, out);
            }
            Stmt::Block(b) | Stmt::DelayedFreeScope(b, _) => {
                collect_sites_in_block(program, pts, func, b, depth, out)
            }
            Stmt::Check(Check::AssertMayBlock { .. }, _) => {}
            other => {
                // Track atomic region transitions from the calls in this
                // statement, in order.
                let mut exprs: Vec<&Expr> = Vec::new();
                visit::walk_stmt_exprs(other, &mut |e| exprs.push(e));
                for e in exprs {
                    if let Expr::Call(callee, _) = e {
                        if let Expr::Var(name) = &**callee {
                            if ATOMIC_ENTER.contains(&name.as_str()) {
                                collect_sites_in_expr(program, pts, func, e, *depth, span, out);
                                *depth += 1;
                                continue;
                            }
                            if ATOMIC_EXIT.contains(&name.as_str()) {
                                *depth = depth.saturating_sub(1);
                                collect_sites_in_expr(program, pts, func, e, *depth, span, out);
                                continue;
                            }
                        }
                        collect_one_site(program, pts, func, e, *depth, span, out);
                    }
                }
            }
        }
    }
}

fn collect_sites_in_expr(
    program: &Program,
    pts: &ivy_analysis::PointsToResult,
    func: &Function,
    e: &Expr,
    depth: u32,
    span: Span,
    out: &mut Vec<Site>,
) {
    visit::walk_expr(e, &mut |sub| {
        if matches!(sub, Expr::Call(..)) {
            collect_one_site(program, pts, func, sub, depth, span, out);
        }
    });
}

fn collect_one_site(
    program: &Program,
    pts: &ivy_analysis::PointsToResult,
    func: &Function,
    call: &Expr,
    depth: u32,
    span: Span,
    out: &mut Vec<Site>,
) {
    let Expr::Call(callee, args) = call else {
        return;
    };
    let (targets, callee_text, waits) = match &**callee {
        Expr::Var(name) => {
            // Direct calls resolve to the named function whether it is
            // defined, a builtin, or an undeclared external.
            let waits = waits_for_memory(program, name, args);
            let targets = BTreeSet::from([name.clone()]);
            (targets, name.clone(), waits)
        }
        other => {
            let text = expr_str(other);
            let targets = pts.indirect_call_targets(&func.name, &text);
            (targets, text, false)
        }
    };
    out.push(Site {
        caller: func.name.clone(),
        callee_text,
        targets,
        waits_for_memory: waits,
        in_atomic_region: depth > 0,
        span,
    });
}

/// True if this call is to a conditional allocator with flags that allow
/// sleeping (either a non-constant flags argument, or a constant containing
/// `GFP_WAIT`).
fn waits_for_memory(program: &Program, name: &str, args: &[Expr]) -> bool {
    let flag_param_idx = if BUILTIN_BLOCKING_IF_FLAGS.contains(&name) {
        Some(1)
    } else {
        program.function(name).and_then(|f| {
            f.attrs
                .blocking_if_flag
                .as_ref()
                .and_then(|flag| f.params.iter().position(|p| &p.name == flag))
        })
    };
    let Some(idx) = flag_param_idx else {
        return false;
    };
    match args.get(idx) {
        Some(Expr::Int(v)) => v & GFP_WAIT != 0,
        Some(_) => true, // unknown flags: conservatively may sleep
        None => false,
    }
}

/// A call chain from `from` down to a blocking seed, for diagnostics.
fn blocking_chain(from: &str, cg: &CallGraph, seeds: &BTreeSet<String>) -> Vec<String> {
    // BFS towards a seed.
    let mut prev: BTreeMap<String, String> = BTreeMap::new();
    let mut queue = VecDeque::from([from.to_string()]);
    let mut seen = BTreeSet::from([from.to_string()]);
    while let Some(f) = queue.pop_front() {
        if seeds.contains(&f) {
            let mut chain = vec![f.clone()];
            let mut cur = f;
            while let Some(p) = prev.get(&cur) {
                chain.push(p.clone());
                cur = p.clone();
            }
            chain.reverse();
            return chain;
        }
        for callee in cg.callees(&f) {
            if seen.insert(callee.clone()) {
                prev.insert(callee.clone(), f.clone());
                queue.push_back(callee);
            }
        }
    }
    vec![from.to_string()]
}

/// Inserts an `__assert_may_block` run-time check at the entry of each named
/// function, returning the patched program and the number of checks added.
pub fn insert_asserts(program: &Program, functions: &BTreeSet<String>) -> (Program, u64) {
    let mut out = program.clone();
    let mut added = 0;
    for name in functions {
        let Some(func) = out.function_mut(name) else {
            continue;
        };
        let Some(body) = func.body.as_mut() else {
            continue;
        };
        let already = matches!(
            body.stmts.first(),
            Some(Stmt::Check(Check::AssertMayBlock { .. }, _))
        );
        if already {
            continue;
        }
        body.stmts.insert(
            0,
            Stmt::Check(
                Check::AssertMayBlock { site: name.clone() },
                Span::synthetic(),
            ),
        );
        added += 1;
    }
    (out, added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    /// A miniature tty/console subsystem reproducing the paper's
    /// `flush_to_ldisc` / `read_chan` false-positive situation, plus one real
    /// bug (GFP_WAIT allocation under a spinlock) and one indirect-call bug.
    const TTY: &str = r#"
        #[allocator] #[blocking_if(flags)]
        extern fn kmalloc(size: u32, flags: u32) -> void *;
        extern fn spin_lock_irqsave(l: u32 *);
        extern fn spin_unlock_irqrestore(l: u32 *);
        #[blocking]
        extern fn wait_for_completion(x: u32 *);

        global tty_lock: u32 = 0;
        global done: u32 = 0;

        struct ldisc_ops { receive: fnptr() -> void; }
        global n_tty_ops: struct ldisc_ops;

        fn read_chan() {
            wait_for_completion(&done);
        }

        fn echo_char() { }

        fn register_ldisc() {
            n_tty_ops.receive = read_chan;
        }

        // FALSE POSITIVE path: the points-to set of `receive` includes
        // read_chan, but this handler is only ever installed for echo paths.
        #[irq_handler]
        fn tty_interrupt() {
            n_tty_ops.receive();
        }

        // REAL BUG 1: sleeping allocation while holding a spinlock with IRQs
        // off.
        fn queue_packet(len: u32) -> void * {
            spin_lock_irqsave(&tty_lock);
            let buf: void * = kmalloc(len, 0x10);
            spin_unlock_irqrestore(&tty_lock);
            return buf;
        }

        // REAL BUG 2: direct call chain to a sleeping primitive from an
        // interrupt handler.
        #[irq_handler]
        fn timer_tick() {
            flush_queue();
        }
        fn flush_queue() {
            read_chan();
        }

        // Fine: atomic allocation under the lock.
        fn queue_packet_atomic(len: u32) -> void * {
            spin_lock_irqsave(&tty_lock);
            let buf: void * = kmalloc(len, 0);
            spin_unlock_irqrestore(&tty_lock);
            return buf;
        }
    "#;

    #[test]
    fn may_block_set_is_sound() {
        let p = parse_program(TTY).unwrap();
        let r = BlockStop::new().analyze(&p);
        assert!(r.may_block.contains("read_chan"));
        assert!(r.may_block.contains("flush_queue"));
        assert!(
            r.may_block.contains("queue_packet"),
            "GFP_WAIT allocation may sleep"
        );
        assert!(!r.may_block.contains("echo_char"));
        assert!(!r.may_block.contains("queue_packet_atomic"));
    }

    #[test]
    fn finds_real_bugs_and_false_positive() {
        let p = parse_program(TTY).unwrap();
        let r = BlockStop::new().analyze(&p);
        let callers: BTreeSet<String> = r.findings.iter().map(|f| f.caller.clone()).collect();
        assert!(
            callers.contains("queue_packet"),
            "findings: {:?}",
            r.findings
        );
        assert!(callers.contains("timer_tick") || callers.contains("flush_queue"));
        assert!(
            callers.contains("tty_interrupt"),
            "the conservative points-to analysis should flag the indirect call"
        );
        // No findings against the benign paths.
        assert!(!callers.contains("queue_packet_atomic"));
        assert!(!callers.contains("echo_char"));
    }

    #[test]
    fn atomic_context_propagates_through_calls() {
        let p = parse_program(TTY).unwrap();
        let r = BlockStop::new().analyze(&p);
        assert!(r.atomic_functions.contains("tty_interrupt"));
        assert!(r.atomic_functions.contains("timer_tick"));
        assert!(
            r.atomic_functions.contains("flush_queue"),
            "called from an interrupt handler: {:?}",
            r.atomic_functions
        );
    }

    #[test]
    fn runtime_asserts_silence_false_positives() {
        let p = parse_program(TTY).unwrap();
        let mut config = BlockStopConfig::default();
        config.asserted_functions.insert("read_chan".to_string());
        let r = BlockStop::with_config(config).analyze(&p);
        let callers: BTreeSet<String> = r.findings.iter().map(|f| f.caller.clone()).collect();
        assert!(
            !callers.contains("tty_interrupt"),
            "assert on read_chan silences the indirect-call false positive: {:?}",
            r.findings
        );
        // The genuine GFP_WAIT bug is still reported.
        assert!(callers.contains("queue_packet"));
        assert!(r.suppressed_by_assert >= 1);
    }

    #[test]
    fn insert_asserts_adds_entry_checks_once() {
        let p = parse_program(TTY).unwrap();
        let set = BTreeSet::from(["read_chan".to_string(), "missing_fn".to_string()]);
        let (patched, added) = insert_asserts(&p, &set);
        assert_eq!(added, 1);
        let f = patched.function("read_chan").unwrap();
        assert!(matches!(
            f.body.as_ref().unwrap().stmts[0],
            Stmt::Check(Check::AssertMayBlock { .. }, _)
        ));
        // Idempotent.
        let (patched2, added2) = insert_asserts(&patched, &set);
        assert_eq!(added2, 0);
        assert_eq!(
            patched2
                .function("read_chan")
                .unwrap()
                .body
                .as_ref()
                .unwrap()
                .stmts
                .len(),
            f.body.as_ref().unwrap().stmts.len()
        );
    }

    #[test]
    fn example_chain_reaches_a_seed() {
        let p = parse_program(TTY).unwrap();
        let r = BlockStop::new().analyze(&p);
        let finding = r
            .findings
            .iter()
            .find(|f| f.caller == "timer_tick" || f.caller == "flush_queue")
            .expect("real bug 2 must be found");
        let last = finding.example_chain.last().unwrap();
        assert!(r.seeds.contains(last), "chain {:?}", finding.example_chain);
    }

    #[test]
    fn findings_carry_call_site_spans() {
        let p = parse_program(TTY).unwrap();
        let r = BlockStop::new().analyze(&p);
        let f = r
            .findings
            .iter()
            .find(|f| f.caller == "queue_packet")
            .expect("GFP_WAIT bug is found");
        assert!(f.span.is_real(), "parsed programs yield real spans");
        let expected_line = TTY
            .lines()
            .position(|l| l.contains("kmalloc(len, 0x10)"))
            .expect("source contains the bug") as u32
            + 1;
        assert_eq!(
            f.span.start.line, expected_line,
            "the finding points at the allocating statement, not the function"
        );
    }

    #[test]
    fn report_groups_by_caller() {
        let p = parse_program(TTY).unwrap();
        let r = BlockStop::new().analyze(&p);
        let grouped = r.findings_by_caller();
        assert!(grouped.values().all(|v| !v.is_empty()));
        assert_eq!(
            grouped.values().map(|v| v.len()).sum::<usize>(),
            r.findings.len()
        );
    }
}
