//! `ivy-blockstop` — BlockStop, the call-graph analysis that the kernel never
//! calls blocking functions while interrupts are disabled (§2.3 of the paper).
//!
//! The analysis builds a whole-program call graph (resolving function-pointer
//! calls with `ivy-analysis`'s points-to analysis), propagates a seed set of
//! blocking functions backwards, tracks which call sites run in atomic
//! context (interrupt handlers, IRQ-disabled and spinlocked regions, and
//! everything reachable from them), and reports every atomic call site whose
//! targets may block.
//!
//! False positives — unavoidable with a conservative points-to analysis — are
//! silenced the way the paper does it: insert a run-time assertion
//! ([`insert_asserts`]) at the entry of the function the analysis wrongly
//! believes reachable, and tell the analysis about it
//! ([`BlockStopConfig::asserted_functions`]).
//!
//! # Examples
//!
//! ```
//! use ivy_blockstop::BlockStop;
//! use ivy_cmir::parser::parse_program;
//!
//! let program = parse_program(
//!     r#"
//!     #[blocking]
//!     extern fn msleep(ms: u32);
//!     extern fn local_irq_disable();
//!     extern fn local_irq_enable();
//!     fn settle() { msleep(10); }
//!     fn probe_device() {
//!         local_irq_disable();
//!         settle();            // BUG: may sleep with interrupts off
//!         local_irq_enable();
//!     }
//!     "#,
//! )
//! .unwrap();
//! let report = BlockStop::new().analyze(&program);
//! assert!(report.may_block.contains("settle"));
//! // Both the atomic call site in probe_device and the sleep reached through
//! // settle (which now runs in atomic context) are reported.
//! assert!(report.findings.iter().any(|f| f.caller == "probe_device"));
//! assert!(report.findings.iter().all(|f| f.caller != "irrelevant"));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod plugin;

pub use analysis::{
    insert_asserts, AtomicReason, BlockStop, BlockStopConfig, BlockStopReport, Finding, GFP_WAIT,
};
pub use plugin::BlockStopChecker;
