//! Ground truth about the defects seeded into the synthetic kernel.
//!
//! The corpus generator knows exactly which defects it planted; the
//! experiment harness uses this to classify tool findings (real bug vs.
//! false positive) and to build the fix plans that make the kernel pass its
//! checks, mirroring the manual debugging work described in §2.2 and §2.3.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A seeded blocking-while-atomic bug (the ground truth for experiment E5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingBug {
    /// Function that makes the offending call in atomic context.
    pub caller: String,
    /// The blocking function (or allocator) being called.
    pub callee: String,
    /// Short description of the scenario.
    pub description: String,
}

/// A seeded bad-free defect and the source-level fix that resolves it
/// (the ground truth for experiment E3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BadFreeDefect {
    /// Function performing the premature free.
    pub function: String,
    /// The fix: either null out this lvalue before the free, or `None` if
    /// the fix is a delayed-free scope on the whole function.
    pub null_lvalue: Option<String>,
    /// True if the fix is to wrap the function in a delayed-free scope.
    pub needs_delayed_scope: bool,
}

/// Everything the generator knows about the corpus it produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The real blocking-while-atomic bugs (the paper found 2).
    pub blocking_bugs: Vec<BlockingBug>,
    /// Functions that BlockStop will flag only because of conservative
    /// function-pointer resolution; inserting a run-time assertion at their
    /// entry silences the false positive (the paper needed 15).
    pub false_positive_asserts: BTreeSet<String>,
    /// Seeded bad-free defects and their fixes (27 pointer-nulling + 26
    /// delayed-free-scope fixes in the paper).
    pub bad_free_defects: Vec<BadFreeDefect>,
    /// Functions deliberately marked `#[trusted]`.
    pub trusted_functions: BTreeSet<String>,
}

impl GroundTruth {
    /// The null-out fixes, as (function, lvalue) pairs.
    pub fn null_fixes(&self) -> Vec<(String, String)> {
        self.bad_free_defects
            .iter()
            .filter_map(|d| d.null_lvalue.clone().map(|l| (d.function.clone(), l)))
            .collect()
    }

    /// Functions whose fix is a delayed-free scope.
    pub fn delayed_free_functions(&self) -> Vec<String> {
        self.bad_free_defects
            .iter()
            .filter(|d| d.needs_delayed_scope)
            .map(|d| d.function.clone())
            .collect()
    }

    /// Functions that the seeded blocking bugs implicate (for classifying
    /// BlockStop findings).
    pub fn blocking_bug_callers(&self) -> BTreeSet<String> {
        self.blocking_bugs
            .iter()
            .map(|b| b.caller.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_extraction() {
        let gt = GroundTruth {
            bad_free_defects: vec![
                BadFreeDefect {
                    function: "e1000_remove".into(),
                    null_lvalue: Some("adapter_cache".into()),
                    needs_delayed_scope: false,
                },
                BadFreeDefect {
                    function: "dentry_kill".into(),
                    null_lvalue: None,
                    needs_delayed_scope: true,
                },
            ],
            ..GroundTruth::default()
        };
        assert_eq!(gt.null_fixes().len(), 1);
        assert_eq!(gt.delayed_free_functions(), vec!["dentry_kill".to_string()]);
    }

    #[test]
    fn blocking_callers() {
        let gt = GroundTruth {
            blocking_bugs: vec![BlockingBug {
                caller: "rtl_poll".into(),
                callee: "kmalloc".into(),
                description: "GFP_WAIT under spinlock".into(),
            }],
            ..GroundTruth::default()
        };
        assert!(gt.blocking_bug_callers().contains("rtl_poll"));
    }
}
