//! Ground truth about the defects seeded into the synthetic kernel.
//!
//! The corpus generator knows exactly which defects it planted; the
//! experiment harness uses this to classify tool findings (real bug vs.
//! false positive) and to build the fix plans that make the kernel pass its
//! checks, mirroring the manual debugging work described in §2.2 and §2.3.

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::collections::BTreeSet;

/// A seeded blocking-while-atomic bug (the ground truth for experiment E5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingBug {
    /// Function that makes the offending call in atomic context.
    pub caller: String,
    /// The blocking function (or allocator) being called.
    pub callee: String,
    /// Short description of the scenario.
    pub description: String,
}

/// A seeded bad-free defect and the source-level fix that resolves it
/// (the ground truth for experiment E3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BadFreeDefect {
    /// Function performing the premature free.
    pub function: String,
    /// The fix: either null out this lvalue before the free, or `None` if
    /// the fix is a delayed-free scope on the whole function.
    pub null_lvalue: Option<String>,
    /// True if the fix is to wrap the function in a delayed-free scope.
    pub needs_delayed_scope: bool,
}

/// Everything the generator knows about the corpus it produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The real blocking-while-atomic bugs (the paper found 2).
    pub blocking_bugs: Vec<BlockingBug>,
    /// Functions that BlockStop will flag only because of conservative
    /// function-pointer resolution; inserting a run-time assertion at their
    /// entry silences the false positive (the paper needed 15).
    pub false_positive_asserts: BTreeSet<String>,
    /// Seeded bad-free defects and their fixes (27 pointer-nulling + 26
    /// delayed-free-scope fixes in the paper).
    pub bad_free_defects: Vec<BadFreeDefect>,
    /// Functions deliberately marked `#[trusted]`.
    pub trusted_functions: BTreeSet<String>,
}

impl GroundTruth {
    /// The null-out fixes, as (function, lvalue) pairs.
    pub fn null_fixes(&self) -> Vec<(String, String)> {
        self.bad_free_defects
            .iter()
            .filter_map(|d| d.null_lvalue.clone().map(|l| (d.function.clone(), l)))
            .collect()
    }

    /// Functions whose fix is a delayed-free scope.
    pub fn delayed_free_functions(&self) -> Vec<String> {
        self.bad_free_defects
            .iter()
            .filter(|d| d.needs_delayed_scope)
            .map(|d| d.function.clone())
            .collect()
    }

    /// Functions that the seeded blocking bugs implicate (for classifying
    /// BlockStop findings).
    pub fn blocking_bug_callers(&self) -> BTreeSet<String> {
        self.blocking_bugs
            .iter()
            .map(|b| b.caller.clone())
            .collect()
    }

    /// Serializes to a stable JSON object. The `derive(Serialize)` above
    /// binds against the vendored no-op serde shim, so this hand-coded
    /// encoding is the *actual* wire format — the oracle and the
    /// experiment harness persist classification inputs through it.
    pub fn to_value(&self) -> Value {
        let bugs: Vec<Value> = self
            .blocking_bugs
            .iter()
            .map(|b| {
                let mut m = Map::new();
                m.insert("caller".into(), Value::from(b.caller.as_str()));
                m.insert("callee".into(), Value::from(b.callee.as_str()));
                m.insert("description".into(), Value::from(b.description.as_str()));
                Value::Object(m)
            })
            .collect();
        let defects: Vec<Value> = self
            .bad_free_defects
            .iter()
            .map(|d| {
                let mut m = Map::new();
                m.insert("function".into(), Value::from(d.function.as_str()));
                if let Some(l) = &d.null_lvalue {
                    m.insert("null_lvalue".into(), Value::from(l.as_str()));
                }
                m.insert(
                    "needs_delayed_scope".into(),
                    Value::from(d.needs_delayed_scope),
                );
                Value::Object(m)
            })
            .collect();
        let strings = |set: &BTreeSet<String>| {
            Value::Array(set.iter().map(|s| Value::from(s.as_str())).collect())
        };
        let mut root = Map::new();
        root.insert("blocking_bugs".into(), Value::Array(bugs));
        root.insert(
            "false_positive_asserts".into(),
            strings(&self.false_positive_asserts),
        );
        root.insert("bad_free_defects".into(), Value::Array(defects));
        root.insert("trusted_functions".into(), strings(&self.trusted_functions));
        Value::Object(root)
    }

    /// Decodes the [`GroundTruth::to_value`] form; `None` rejects
    /// malformed input.
    pub fn from_value(v: &Value) -> Option<GroundTruth> {
        let text = |v: &Value, key: &str| -> Option<String> {
            v.get(key).and_then(Value::as_str).map(String::from)
        };
        let string_set = |key: &str| -> Option<BTreeSet<String>> {
            v.get(key)?
                .as_array()?
                .iter()
                .map(|s| s.as_str().map(String::from))
                .collect()
        };
        let blocking_bugs = v
            .get("blocking_bugs")?
            .as_array()?
            .iter()
            .map(|b| {
                Some(BlockingBug {
                    caller: text(b, "caller")?,
                    callee: text(b, "callee")?,
                    description: text(b, "description")?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let bad_free_defects = v
            .get("bad_free_defects")?
            .as_array()?
            .iter()
            .map(|d| {
                Some(BadFreeDefect {
                    function: text(d, "function")?,
                    null_lvalue: text(d, "null_lvalue"),
                    needs_delayed_scope: d.get("needs_delayed_scope")?.as_bool()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(GroundTruth {
            blocking_bugs,
            false_positive_asserts: string_set("false_positive_asserts")?,
            bad_free_defects,
            trusted_functions: string_set("trusted_functions")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_extraction() {
        let gt = GroundTruth {
            bad_free_defects: vec![
                BadFreeDefect {
                    function: "e1000_remove".into(),
                    null_lvalue: Some("adapter_cache".into()),
                    needs_delayed_scope: false,
                },
                BadFreeDefect {
                    function: "dentry_kill".into(),
                    null_lvalue: None,
                    needs_delayed_scope: true,
                },
            ],
            ..GroundTruth::default()
        };
        assert_eq!(gt.null_fixes().len(), 1);
        assert_eq!(gt.delayed_free_functions(), vec!["dentry_kill".to_string()]);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let gt = GroundTruth {
            blocking_bugs: vec![BlockingBug {
                caller: "eth0_reset".into(),
                callee: "kmalloc".into(),
                description: "GFP_WAIT under spinlock".into(),
            }],
            false_positive_asserts: BTreeSet::from(["blk0_submit_wait".to_string()]),
            bad_free_defects: vec![
                BadFreeDefect {
                    function: "cache0_release".into(),
                    null_lvalue: Some("objcache_0".into()),
                    needs_delayed_scope: false,
                },
                BadFreeDefect {
                    function: "ring0_teardown".into(),
                    null_lvalue: None,
                    needs_delayed_scope: true,
                },
            ],
            trusted_functions: BTreeSet::from(["ioread32".to_string()]),
        };
        let v = gt.to_value();
        assert_eq!(GroundTruth::from_value(&v).unwrap(), gt);
        // Through actual text too (the derive-based path never did this).
        let text = serde_json::to_string(&v).unwrap();
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(GroundTruth::from_value(&reparsed).unwrap(), gt);
        // Defaults (and absent optional lvalues) survive.
        let empty = GroundTruth::default();
        assert_eq!(GroundTruth::from_value(&empty.to_value()).unwrap(), empty);
        // Malformed input is rejected, not mis-decoded.
        assert!(GroundTruth::from_value(&Value::from("nope")).is_none());
    }

    #[test]
    fn blocking_callers() {
        let gt = GroundTruth {
            blocking_bugs: vec![BlockingBug {
                caller: "rtl_poll".into(),
                callee: "kmalloc".into(),
                description: "GFP_WAIT under spinlock".into(),
            }],
            ..GroundTruth::default()
        };
        assert!(gt.blocking_bug_callers().contains("rtl_poll"));
    }
}
