//! Deterministic program sub-sampling for differential testing.
//!
//! The solver-equivalence property test (`ivy-analysis`), the dynamic
//! soundness oracle's property test, and the `table_oracle` bench all
//! derive randomized sub-programs from a generated kernel: whole
//! functions dropped, bodies of others stripped to extern declarations,
//! everything else (globals, composites, typedefs) kept. Each case then
//! exercises a different constraint graph — dangling direct calls,
//! unresolved indirect sites, orphaned function pointers — and a
//! different executable subset, while staying realistic kernel code.
//! This module is the single definition, so the harnesses cannot drift.

use ivy_cmir::ast::Program;

/// A tiny deterministic RNG (SplitMix64) for the sub-sampling decisions;
/// property-test shims hand us a seed and this stretches it.
pub struct Mix(pub u64);

impl Mix {
    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.next_u64() % 100 < percent
    }
}

/// Derives a random sub-program: each function is removed outright with
/// probability `drop_pct`%, surviving bodies are stripped to extern
/// declarations with probability `strip_pct`%, and everything else is
/// kept. Deterministic in `(seed, drop_pct, strip_pct)`.
pub fn subsample_program(base: &Program, seed: u64, drop_pct: u64, strip_pct: u64) -> Program {
    let mut rng = Mix(seed);
    let mut program = base.clone();
    let mut functions = Vec::with_capacity(base.functions.len());
    for f in &base.functions {
        if rng.chance(drop_pct) {
            continue;
        }
        let mut f = f.clone();
        if f.body.is_some() && rng.chance(strip_pct) {
            f.body = None;
        }
        functions.push(f);
    }
    program.functions = functions;
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuild, KernelConfig};

    #[test]
    fn subsampling_is_deterministic_and_actually_samples() {
        let base = KernelBuild::generate(&KernelConfig::small()).program;
        let a = subsample_program(&base, 7, 30, 25);
        let b = subsample_program(&base, 7, 30, 25);
        assert_eq!(a.functions.len(), b.functions.len());
        assert!(a.functions.len() < base.functions.len());
        assert!(a.functions.iter().any(|f| f.body.is_none()));
        // Zero percentages are the identity on functions.
        let id = subsample_program(&base, 7, 0, 0);
        assert_eq!(id.functions.len(), base.functions.len());
        // Different seeds sample differently.
        let c = subsample_program(&base, 8, 30, 25);
        assert_ne!(
            a.functions.iter().map(|f| &f.name).collect::<Vec<_>>(),
            c.functions.iter().map(|f| &f.name).collect::<Vec<_>>()
        );
    }
}
