//! The synthetic Linux-like kernel corpus, written in KC.
//!
//! The corpus substitutes for the stripped-down Linux 2.6.15.5 kernel the
//! paper converted: it has the same subsystem structure (`kernel/`, `mm/`,
//! `fs/`, `net/ipv4`, `drivers/`), uses the idioms the three tools exist to
//! check (annotated counted buffers, unions with tags, slab-style allocation,
//! spinlocks and IRQ-disabled regions, interrupt handlers, function-pointer
//! operation tables), and carries a seeded defect population whose ground
//! truth the experiment harness knows exactly.
//!
//! The fixed subsystems are plain KC source strings; the parts whose size is
//! configurable (drivers, bad-free defect sites, BlockStop false-positive
//! groups) are generated per index.

/// The extern declarations for every VM builtin the kernel uses, with the
/// attribute seeds (`allocator`, `blocking`, `blocking_if`) the analyses need.
pub const PRELUDE: &str = r#"
// ---- arch/i386-style builtin interface -------------------------------------
#[allocator] #[blocking_if(flags)]
extern fn kmalloc(size: u32, flags: u32) -> void *;
#[deallocator]
extern fn kfree(p: void *);
extern fn memcpy(dst: void *, src: void *, n: u32) -> void *;
extern fn memset(p: void *, c: i32, n: u32) -> void *;
extern fn memcmp(a: void *, b: void *, n: u32) -> i32;
extern fn strlen(s: u8 *) -> u32;
#[blocking]
extern fn copy_to_user(dst: void *, src: void *, n: u32) -> i32;
#[blocking]
extern fn copy_from_user(dst: void *, src: void *, n: u32) -> i32;
extern fn printk(msg: u8 *);
extern fn panic(msg: u8 *);
extern fn spin_lock(l: u32 *);
extern fn spin_unlock(l: u32 *);
extern fn spin_lock_irqsave(l: u32 *);
extern fn spin_unlock_irqrestore(l: u32 *);
extern fn local_irq_disable();
extern fn local_irq_enable();
extern fn in_interrupt() -> i32;
#[blocking]
extern fn schedule();
#[blocking]
extern fn wait_for_completion(c: u32 *);
extern fn complete(c: u32 *);
#[blocking]
extern fn msleep(ms: u32);
extern fn udelay(us: u32);
extern fn syscall_entry();
extern fn syscall_exit();
"#;

/// `lib/`: the string/memory helpers the rest of the kernel uses. These are
/// fully annotated, so Deputy discharges their hot loops statically.
pub const LIB: &str = r#"
// ---- lib/string.kc ----------------------------------------------------------
#[subsystem("lib")]
fn kmemcpy(dst: u8 * count(n), src: u8 * count(n), n: u32) {
    let i: u32 = 0;
    while (i < n) {
        dst[i] = src[i];
        i = i + 1;
    }
}

#[subsystem("lib")]
fn kmemset(dst: u8 * count(n), value: u8, n: u32) {
    let i: u32 = 0;
    while (i < n) {
        dst[i] = value;
        i = i + 1;
    }
}

#[subsystem("lib")]
fn kmemcmp(a: u8 * count(n), b: u8 * count(n), n: u32) -> i32 {
    let i: u32 = 0;
    while (i < n) {
        if (a[i] != b[i]) {
            if (a[i] < b[i]) { return -1; }
            return 1;
        }
        i = i + 1;
    }
    return 0;
}

#[subsystem("lib")]
fn kstrnlen(s: u8 * count(cap) nullterm, cap: u32) -> u32 {
    let i: u32 = 0;
    while (i < cap) {
        if (s[i] == 0) { return i; }
        i = i + 1;
    }
    return cap;
}

#[subsystem("lib")]
fn checksum32(data: u8 * count(len), len: u32) -> u32 {
    let acc: u32 = 0;
    let i: u32 = 0;
    while (i < len) {
        acc = acc + (data[i] as u32);
        i = i + 1;
    }
    return acc;
}

// Low-level port I/O is beyond Deputy's type system: trusted, and counted in
// the trusted-lines statistics.
#[subsystem("lib")] #[trusted]
fn ioread32(port: u32) -> u32 {
    let p: u32 * = (port as u32 *);
    return *p;
}

#[subsystem("lib")] #[trusted]
fn iowrite32(port: u32, value: u32) {
    let p: u32 * = (port as u32 *);
    *p = value;
}
"#;

/// `kernel/`: tasks, the run queue, fork/exit, signals, and the scheduler
/// tick — the substrate for the `lat_proc`, `lat_ctx*`, and `lat_sig`
/// workloads and for the fork overhead experiment (E4).
pub const SCHED: &str = r#"
// ---- kernel/sched.kc --------------------------------------------------------
struct page_ref {
    pfn: u32;
    mapcount: u32;
}

struct task_struct {
    pid: u32;
    state: u32;
    prio: u32;
    pending_signals: u32;
    stack_size: u32;
    stack: u8 * count(stack_size);
    mm_pages: struct page_ref *[32];
    next: struct task_struct *;
}

global mem_map: struct page_ref[64];

global runqueue: struct task_struct *;
global current_task: struct task_struct *;
global task_count: u32 = 0;
global next_pid: u32 = 2;
global rq_lock: u32 = 0;
global ctx_switches: u64 = 0;

#[subsystem("kernel")]
fn enqueue_task(t: struct task_struct * nonnull) {
    spin_lock(&rq_lock);
    t->next = runqueue;
    runqueue = t;
    task_count = task_count + 1;
    spin_unlock(&rq_lock);
}

#[subsystem("kernel")]
fn dequeue_task() -> struct task_struct * {
    spin_lock(&rq_lock);
    let t: struct task_struct * = runqueue;
    if (t != null) {
        runqueue = t->next;
        t->next = null;
        task_count = task_count - 1;
    }
    spin_unlock(&rq_lock);
    return t;
}

#[subsystem("kernel")]
fn copy_thread(child: struct task_struct * nonnull, parent: struct task_struct *) {
    if (parent != null) {
        if (parent->stack != null) {
            let n: u32 = child->stack_size;
            if (parent->stack_size < n) { n = parent->stack_size; }
            kmemcpy(child->stack, parent->stack, n);
        }
        child->prio = parent->prio;
    }
}

#[subsystem("kernel")]
fn do_fork(stack_size: u32) -> u32 {
    let child: struct task_struct * = (kmalloc(sizeof(struct task_struct), 16) as struct task_struct *);
    if (child == null) { return 0; }
    child->pid = next_pid;
    next_pid = next_pid + 1;
    child->state = 0;
    child->pending_signals = 0;
    child->stack_size = stack_size;
    child->stack = (kmalloc(stack_size, 16) as u8 *);
    kmemset(child->stack, 0, stack_size);
    // Populate the child's page table: one reference per mapped page. These
    // pointer writes are exactly what makes fork expensive under CCount.
    let pg: u32 = 0;
    while (pg < 32) {
        child->mm_pages[pg] = &mem_map[(child->pid + pg) % 64];
        mem_map[(child->pid + pg) % 64].mapcount = mem_map[(child->pid + pg) % 64].mapcount + 1;
        pg = pg + 1;
    }
    copy_thread(child, current_task);
    enqueue_task(child);
    return child->pid;
}

#[subsystem("kernel")]
fn do_exit_task(t: struct task_struct * nonnull) {
    let stack: u8 * = t->stack;
    t->stack = null;
    kfree((stack as void *));
    kfree((t as void *));
}

#[subsystem("kernel")]
fn sys_fork() -> u32 {
    syscall_entry();
    let pid: u32 = do_fork(512);
    syscall_exit();
    return pid;
}

#[subsystem("kernel")]
fn sys_exit() {
    syscall_entry();
    let t: struct task_struct * = dequeue_task();
    if (t != null) {
        do_exit_task(t);
    }
    syscall_exit();
}

#[subsystem("kernel")]
fn sys_getpid() -> u32 {
    syscall_entry();
    let pid: u32 = 1;
    if (current_task != null) {
        pid = current_task->pid;
    }
    syscall_exit();
    return pid;
}

#[subsystem("kernel")]
fn context_switch() {
    let next: struct task_struct * = dequeue_task();
    if (next == null) { return; }
    let prev: struct task_struct * = current_task;
    current_task = next;
    ctx_switches = ctx_switches + 1;
    if (prev != null) {
        enqueue_task(prev);
    }
}

#[subsystem("kernel")]
fn send_signal(pid: u32, sig: u32) -> i32 {
    spin_lock(&rq_lock);
    let t: struct task_struct * = runqueue;
    let found: i32 = -3;
    while (t != null) {
        if (t->pid == pid) {
            t->pending_signals = t->pending_signals | (1 << sig);
            found = 0;
            t = null;
        } else {
            t = t->next;
        }
    }
    spin_unlock(&rq_lock);
    return found;
}

#[subsystem("kernel")]
fn deliver_signals(t: struct task_struct * nonnull) -> u32 {
    let delivered: u32 = 0;
    let sig: u32 = 0;
    while (sig < 32) {
        if ((t->pending_signals & (1 << sig)) != 0) {
            delivered = delivered + 1;
        }
        sig = sig + 1;
    }
    t->pending_signals = 0;
    return delivered;
}
"#;

/// `mm/`: anonymous mappings, a brk-style heap, and the slab-like object
/// cache front end used by the filesystems.
pub const MM: &str = r#"
// ---- mm/mmap.kc -------------------------------------------------------------
struct vm_area {
    start: u32;
    length: u32;
    pages: u8 * count(length);
    next: struct vm_area *;
}

global mm_vma_list: struct vm_area *;
global mm_mapped_bytes: u64 = 0;
global mm_lock: u32 = 0;

#[subsystem("mm")]
fn mmap_region(length: u32) -> struct vm_area * {
    let vma: struct vm_area * = (kmalloc(sizeof(struct vm_area), 16) as struct vm_area *);
    if (vma == null) { return null; }
    vma->length = length;
    vma->pages = (kmalloc(length, 16) as u8 *);
    kmemset(vma->pages, 0, length);
    spin_lock(&mm_lock);
    vma->start = (mm_mapped_bytes as u32);
    vma->next = mm_vma_list;
    mm_vma_list = vma;
    mm_mapped_bytes = mm_mapped_bytes + (length as u64);
    spin_unlock(&mm_lock);
    return vma;
}

#[subsystem("mm")]
fn munmap_region(vma: struct vm_area * nonnull) {
    spin_lock(&mm_lock);
    if (mm_vma_list == vma) {
        mm_vma_list = vma->next;
    }
    spin_unlock(&mm_lock);
    let pages: u8 * = vma->pages;
    vma->pages = null;
    vma->next = null;
    kfree((pages as void *));
    kfree((vma as void *));
}

#[subsystem("mm")]
fn mm_touch_pages(vma: struct vm_area * nonnull, stride: u32) -> u32 {
    let acc: u32 = 0;
    let i: u32 = 0;
    while (i < vma->length) {
        acc = acc + (vma->pages[i] as u32);
        i = i + stride;
    }
    return acc;
}
"#;

/// `fs/`: the VFS layer with function-pointer operation tables, an ext2-like
/// filesystem, procfs, the dcache, and a pipe implementation.
pub const FS: &str = r#"
// ---- fs/vfs.kc --------------------------------------------------------------
struct file_ops {
    read: fnptr(u32, u8 *, u32) -> i32;
    write: fnptr(u32, u8 *, u32) -> i32;
}

struct inode {
    ino: u32;
    size: u32;
    capacity: u32;
    data: u8 * count(capacity);
    ops: struct file_ops *;
    nlink: u32;
}

struct dentry {
    node: struct inode *;
    parent: struct dentry *;
    hash: u32;
    next: struct dentry *;
}

global file_table: struct inode *[128];
global dcache_head: struct dentry *;
global vfs_lock: u32 = 0;
global vfs_files_created: u32 = 0;
global ext2_ops: struct file_ops;
global proc_ops: struct file_ops;
global user_bounce: u8[4096];

#[subsystem("fs")]
fn ext2_read(ino: u32, buf: u8 *, n: u32) -> i32 {
    let node: struct inode * = file_table[ino % 128];
    if (node == null) { return -2; }
    let len: u32 = n;
    if (node->size < len) { len = node->size; }
    copy_to_user((buf as void *), (node->data as void *), len);
    return (len as i32);
}

#[subsystem("fs")]
fn ext2_write(ino: u32, buf: u8 *, n: u32) -> i32 {
    let node: struct inode * = file_table[ino % 128];
    if (node == null) { return -2; }
    let len: u32 = n;
    if (node->capacity < len) { len = node->capacity; }
    copy_from_user((node->data as void *), (buf as void *), len);
    node->size = len;
    return (len as i32);
}

#[subsystem("fs")]
fn proc_read(ino: u32, buf: u8 *, n: u32) -> i32 {
    // procfs contents are synthesised on the fly.
    let len: u32 = n;
    if (len > 64) { len = 64; }
    let i: u32 = 0;
    while (i < len) {
        user_bounce[i % 4096] = ((ino + i) as u8);
        i = i + 1;
    }
    copy_to_user((buf as void *), (&user_bounce[0] as void *), len);
    return (len as i32);
}

#[subsystem("fs")]
fn register_filesystems() {
    ext2_ops.read = ext2_read;
    ext2_ops.write = ext2_write;
    proc_ops.read = proc_read;
    proc_ops.write = ext2_write;
}

#[subsystem("fs")]
fn vfs_create(ino: u32, capacity: u32) -> i32 {
    let node: struct inode * = (kmalloc(sizeof(struct inode), 16) as struct inode *);
    if (node == null) { return -12; }
    node->ino = ino;
    node->size = 0;
    node->capacity = capacity;
    node->data = (kmalloc(capacity, 16) as u8 *);
    node->ops = &ext2_ops;
    node->nlink = 1;
    spin_lock(&vfs_lock);
    file_table[ino % 128] = node;
    vfs_files_created = vfs_files_created + 1;
    spin_unlock(&vfs_lock);
    return 0;
}

#[subsystem("fs")]
fn vfs_unlink(ino: u32) -> i32 {
    spin_lock(&vfs_lock);
    let node: struct inode * = file_table[ino % 128];
    file_table[ino % 128] = null;
    spin_unlock(&vfs_lock);
    if (node == null) { return -2; }
    let data: u8 * = node->data;
    node->data = null;
    node->ops = null;
    kfree((data as void *));
    kfree((node as void *));
    return 0;
}

#[subsystem("fs")]
fn vfs_read(ino: u32, buf: u8 *, n: u32) -> i32 {
    syscall_entry();
    let node: struct inode * = file_table[ino % 128];
    if (node == null) {
        syscall_exit();
        return -2;
    }
    let ops: struct file_ops * = node->ops;
    let r: i32 = ops->read(ino, buf, n);
    syscall_exit();
    return r;
}

#[subsystem("fs")]
fn vfs_write(ino: u32, buf: u8 *, n: u32) -> i32 {
    syscall_entry();
    let node: struct inode * = file_table[ino % 128];
    if (node == null) {
        syscall_exit();
        return -2;
    }
    let ops: struct file_ops * = node->ops;
    let r: i32 = ops->write(ino, buf, n);
    syscall_exit();
    return r;
}

#[subsystem("fs")]
fn dcache_insert(node: struct inode * nonnull, hash: u32) -> struct dentry * {
    let d: struct dentry * = (kmalloc(sizeof(struct dentry), 16) as struct dentry *);
    if (d == null) { return null; }
    d->node = node;
    d->hash = hash;
    d->parent = null;
    spin_lock(&vfs_lock);
    d->next = dcache_head;
    dcache_head = d;
    spin_unlock(&vfs_lock);
    return d;
}

#[subsystem("fs")]
fn dcache_lookup(hash: u32) -> struct dentry * {
    spin_lock(&vfs_lock);
    let d: struct dentry * = dcache_head;
    let found: struct dentry * = null;
    while (d != null) {
        if (d->hash == hash) {
            found = d;
            d = null;
        } else {
            d = d->next;
        }
    }
    spin_unlock(&vfs_lock);
    return found;
}

#[subsystem("fs")]
fn dcache_prune() -> u32 {
    // Tear the whole chain down; the nodes reference each other, so the
    // frees happen inside a delayed-free scope.
    let pruned: u32 = 0;
    spin_lock(&vfs_lock);
    let d: struct dentry * = dcache_head;
    dcache_head = null;
    spin_unlock(&vfs_lock);
    delayed_free {
        while (d != null) {
            let next: struct dentry * = d->next;
            d->next = null;
            d->node = null;
            d->parent = null;
            kfree((d as void *));
            d = next;
            pruned = pruned + 1;
        }
    }
    return pruned;
}

// ---- fs/pipe.kc -------------------------------------------------------------
struct pipe_buffer {
    capacity: u32;
    data: u8 * count(capacity);
    head: u32;
    tail: u32;
}

global the_pipe: struct pipe_buffer;
global pipe_lock: u32 = 0;

#[subsystem("fs")]
fn pipe_init(capacity: u32) {
    the_pipe.capacity = capacity;
    the_pipe.data = (kmalloc(capacity, 16) as u8 *);
    the_pipe.head = 0;
    the_pipe.tail = 0;
}

#[subsystem("fs")]
fn pipe_write(src: u8 * count(n), n: u32) -> i32 {
    spin_lock(&pipe_lock);
    let i: u32 = 0;
    while (i < n) {
        the_pipe.data[(the_pipe.head + i) % the_pipe.capacity] = src[i];
        i = i + 1;
    }
    the_pipe.head = the_pipe.head + n;
    spin_unlock(&pipe_lock);
    return (n as i32);
}

#[subsystem("fs")]
fn pipe_read(dst: u8 * count(n), n: u32) -> i32 {
    spin_lock(&pipe_lock);
    let avail: u32 = the_pipe.head - the_pipe.tail;
    let len: u32 = n;
    if (avail < len) { len = avail; }
    let i: u32 = 0;
    while (i < len) {
        dst[i] = the_pipe.data[(the_pipe.tail + i) % the_pipe.capacity];
        i = i + 1;
    }
    the_pipe.tail = the_pipe.tail + len;
    spin_unlock(&pipe_lock);
    return (len as i32);
}
"#;

/// `net/`: sk_buffs, the device-independent receive queue, an IPv4-ish layer
/// with checksums, and UDP/TCP send/receive paths. The `icmp_packet` struct
/// exercises Deputy's tagged-union checking.
pub const NET: &str = r#"
// ---- net/core.kc ------------------------------------------------------------
struct sk_buff {
    len: u32;
    capacity: u32;
    data: u8 * count(capacity);
    protocol: u32;
    next: struct sk_buff *;
}

struct icmp_packet {
    kind: u32;
    echo_id: u32 when(kind == 8);
    unreach_code: u32 when(kind == 3);
    payload_len: u32;
}

global rx_queue_head: struct sk_buff *;
global rx_queue_len: u32 = 0;
global net_lock: u32 = 0;
global net_rx_packets: u64 = 0;
global net_tx_packets: u64 = 0;
global net_rx_bytes: u64 = 0;
global udp_reply_pending: u32 = 0;
global tcp_connections: u32 = 0;
global kernel_net_buf: u8[4096];

#[subsystem("net/ipv4")]
fn skb_alloc(capacity: u32) -> struct sk_buff * {
    let skb: struct sk_buff * = (kmalloc(sizeof(struct sk_buff), 16) as struct sk_buff *);
    if (skb == null) { return null; }
    skb->capacity = capacity;
    skb->len = 0;
    skb->protocol = 0;
    skb->next = null;
    skb->data = (kmalloc(capacity, 16) as u8 *);
    return skb;
}

#[subsystem("net/ipv4")]
fn skb_free(skb: struct sk_buff * nonnull) {
    let data: u8 * = skb->data;
    skb->data = null;
    skb->next = null;
    kfree((data as void *));
    kfree((skb as void *));
}

#[subsystem("net/ipv4")]
fn skb_put(skb: struct sk_buff * nonnull, src: u8 * count(n), n: u32) -> i32 {
    if (skb->len + n > skb->capacity) { return -90; }
    let i: u32 = 0;
    while (i < n) {
        skb->data[skb->len + i] = src[i];
        i = i + 1;
    }
    skb->len = skb->len + n;
    return 0;
}

#[subsystem("net/ipv4")]
fn netif_rx(skb: struct sk_buff * nonnull) {
    spin_lock_irqsave(&net_lock);
    skb->next = rx_queue_head;
    rx_queue_head = skb;
    rx_queue_len = rx_queue_len + 1;
    net_rx_packets = net_rx_packets + 1;
    net_rx_bytes = net_rx_bytes + (skb->len as u64);
    spin_unlock_irqrestore(&net_lock);
}

#[subsystem("net/ipv4")]
fn net_rx_dequeue() -> struct sk_buff * {
    spin_lock_irqsave(&net_lock);
    let skb: struct sk_buff * = rx_queue_head;
    if (skb != null) {
        rx_queue_head = skb->next;
        skb->next = null;
        rx_queue_len = rx_queue_len - 1;
    }
    spin_unlock_irqrestore(&net_lock);
    return skb;
}

#[subsystem("net/ipv4")]
fn ip_fast_csum(data: u8 * count(len), len: u32) -> u32 {
    let acc: u32 = 0;
    let i: u32 = 0;
    while (i < len) {
        acc = acc + (data[i] as u32);
        i = i + 1;
    }
    return (~acc) & 65535;
}

#[subsystem("net/ipv4")]
fn ip_build_header(skb: struct sk_buff * nonnull, proto: u32, payload_len: u32) {
    let header: u8[20];
    let i: u32 = 0;
    while (i < 20) {
        header[i] = 0;
        i = i + 1;
    }
    header[0] = 69;
    header[9] = (proto as u8);
    header[2] = ((payload_len >> 8) as u8);
    header[3] = (payload_len as u8);
    let csum: u32 = ip_fast_csum(&header[0], 20);
    header[10] = ((csum >> 8) as u8);
    header[11] = (csum as u8);
    skb_put(skb, &header[0], 20);
    skb->protocol = proto;
}

#[subsystem("net/ipv4")]
fn ip_output(payload: u8 * count(len), len: u32, proto: u32) -> i32 {
    let skb: struct sk_buff * = skb_alloc(len + 20);
    if (skb == null) { return -12; }
    ip_build_header(skb, proto, len);
    skb_put(skb, payload, len);
    let csum: u32 = ip_fast_csum(skb->data, skb->len);
    if (csum == 4294967295) { printk("impossible checksum"); }
    netif_rx(skb);
    net_tx_packets = net_tx_packets + 1;
    return 0;
}

#[subsystem("net/ipv4")]
fn net_rx_process_one() -> u32 {
    let skb: struct sk_buff * = net_rx_dequeue();
    if (skb == null) { return 0; }
    let csum: u32 = ip_fast_csum(skb->data, skb->len);
    let consumed: u32 = skb->len;
    if (csum == 4294967294) { printk("impossible checksum"); }
    skb_free(skb);
    return consumed;
}

#[subsystem("net/ipv4")]
fn udp_sendmsg(user_buf: u8 * count(len), len: u32) -> i32 {
    syscall_entry();
    let n: u32 = len;
    if (n > 4096) { n = 4096; }
    copy_from_user((&kernel_net_buf[0] as void *), (user_buf as void *), n);
    let r: i32 = ip_output(&kernel_net_buf[0], n, 17);
    udp_reply_pending = udp_reply_pending + 1;
    syscall_exit();
    return r;
}

#[subsystem("net/ipv4")]
fn udp_recvmsg(user_buf: u8 * count(len), len: u32) -> i32 {
    syscall_entry();
    let consumed: u32 = net_rx_process_one();
    let n: u32 = len;
    if (consumed < n) { n = consumed; }
    if (n > 0) {
        copy_to_user((user_buf as void *), (&kernel_net_buf[0] as void *), n);
    }
    if (udp_reply_pending > 0) {
        udp_reply_pending = udp_reply_pending - 1;
    }
    syscall_exit();
    return (n as i32);
}

#[subsystem("net/ipv4")]
fn tcp_connect() -> i32 {
    syscall_entry();
    // Three-way handshake: SYN, SYN-ACK, ACK as tiny packets.
    let syn: u8[4];
    syn[0] = 2;
    ip_output(&syn[0], 4, 6);
    net_rx_process_one();
    ip_output(&syn[0], 4, 6);
    net_rx_process_one();
    tcp_connections = tcp_connections + 1;
    syscall_exit();
    return 0;
}

#[subsystem("net/ipv4")]
fn tcp_sendmsg(user_buf: u8 * count(len), len: u32) -> i32 {
    syscall_entry();
    let sent: u32 = 0;
    while (sent < len) {
        let chunk: u32 = len - sent;
        if (chunk > 1460) { chunk = 1460; }
        if (chunk > 4096) { chunk = 4096; }
        copy_from_user((&kernel_net_buf[0] as void *), ((user_buf + sent) as void *), chunk);
        ip_output(&kernel_net_buf[0], chunk, 6);
        net_rx_process_one();
        sent = sent + chunk;
    }
    syscall_exit();
    return (sent as i32);
}

#[subsystem("net/ipv4")]
fn icmp_classify(pkt: struct icmp_packet * nonnull) -> u32 {
    if (pkt->kind == 8) {
        return pkt->echo_id;
    }
    if (pkt->kind == 3) {
        return pkt->unreach_code;
    }
    return 0;
}
"#;

/// `kernel/module.kc`: the module loader used by the module-loading overhead
/// experiment (E4).
pub const MODULE: &str = r#"
// ---- kernel/module.kc -------------------------------------------------------
struct module {
    id: u32;
    text_size: u32;
    text: u8 * count(text_size);
    relocations: u32;
    next: struct module *;
}

global module_list: struct module *;
global module_count: u32 = 0;
global module_lock: u32 = 0;

#[subsystem("kernel")]
fn load_module(id: u32, text_size: u32) -> i32 {
    let m: struct module * = (kmalloc(sizeof(struct module), 16) as struct module *);
    if (m == null) { return -12; }
    m->id = id;
    m->text_size = text_size;
    m->text = (kmalloc(text_size, 16) as u8 *);
    // "Relocate" the module text: touch every 16th byte.
    let off: u32 = 0;
    let relocs: u32 = 0;
    while (off < text_size) {
        m->text[off] = ((id + off) as u8);
        relocs = relocs + 1;
        off = off + 16;
    }
    m->relocations = relocs;
    spin_lock(&module_lock);
    m->next = module_list;
    module_list = m;
    module_count = module_count + 1;
    spin_unlock(&module_lock);
    return 0;
}

#[subsystem("kernel")]
fn unload_module() -> i32 {
    spin_lock(&module_lock);
    let m: struct module * = module_list;
    if (m != null) {
        module_list = m->next;
        module_count = module_count - 1;
    }
    spin_unlock(&module_lock);
    if (m == null) { return -2; }
    let text: u8 * = m->text;
    m->text = null;
    m->next = null;
    kfree((text as void *));
    kfree((m as void *));
    return 0;
}
"#;

/// Generates one synthetic ethernet-style driver. Driver 0 contains the
/// seeded real blocking bug (a `GFP_WAIT` allocation inside an IRQ-disabled
/// spinlock region); every driver has an interrupt handler and a transmit
/// path.
pub fn driver_source(index: usize) -> String {
    let reset_body = if index == 0 {
        // REAL BUG 1: sleeping allocation while holding the device lock with
        // interrupts disabled.
        "    spin_lock_irqsave(&dev->lock);\n     let shadow: void * = kmalloc(dev->ring_size, 16);\n     if (shadow != null) { kfree(shadow); }\n     spin_unlock_irqrestore(&dev->lock);"
            .to_string()
    } else {
        "    spin_lock_irqsave(&dev->lock);\n     kmemset(dev->ring, 0, dev->ring_size);\n     spin_unlock_irqrestore(&dev->lock);"
            .to_string()
    };
    format!(
        r#"
// ---- drivers/eth{index}.kc --------------------------------------------------
struct eth_dev_{index} {{
    id: u32;
    lock: u32;
    irq_count: u32;
    ring_size: u32;
    ring: u8 * count(ring_size);
    tx_packets: u32;
}}

global eth{index}_dev: struct eth_dev_{index} *;

#[subsystem("drivers/eth{index}")]
fn eth{index}_probe() -> i32 {{
    let dev: struct eth_dev_{index} * = (kmalloc(sizeof(struct eth_dev_{index}), 16) as struct eth_dev_{index} *);
    if (dev == null) {{ return -12; }}
    dev->id = {index};
    dev->lock = 0;
    dev->irq_count = 0;
    dev->ring_size = 256;
    dev->ring = (kmalloc(256, 16) as u8 *);
    kmemset(dev->ring, 0, 256);
    eth{index}_dev = dev;
    return 0;
}}

#[irq_handler] #[subsystem("drivers/eth{index}")]
fn eth{index}_interrupt() {{
    let dev: struct eth_dev_{index} * = eth{index}_dev;
    if (dev == null) {{ return; }}
    dev->irq_count = dev->irq_count + 1;
    // Acknowledge the device and stamp the ring without sleeping; the actual
    // skb work happens later in process context (NAPI-style).
    let i: u32 = 0;
    while (i < 16) {{
        dev->ring[i] = ((dev->irq_count + i) as u8);
        i = i + 1;
    }}
}}

#[subsystem("drivers/eth{index}")]
fn eth{index}_xmit(payload: u8 * count(len), len: u32) -> i32 {{
    let dev: struct eth_dev_{index} * = eth{index}_dev;
    if (dev == null) {{ return -19; }}
    let n: u32 = len;
    if (n > dev->ring_size) {{ n = dev->ring_size; }}
    spin_lock(&dev->lock);
    kmemcpy(dev->ring, payload, n);
    dev->tx_packets = dev->tx_packets + 1;
    spin_unlock(&dev->lock);
    return ip_output(payload, n, 6);
}}

#[subsystem("drivers/eth{index}")]
fn eth{index}_reset() {{
    let dev: struct eth_dev_{index} * = eth{index}_dev;
    if (dev == null) {{ return; }}
{reset_body}
}}

#[subsystem("drivers/eth{index}")]
fn eth{index}_remove() {{
    let dev: struct eth_dev_{index} * = eth{index}_dev;
    if (dev == null) {{ return; }}
    eth{index}_dev = null;
    let ring: u8 * = dev->ring;
    dev->ring = null;
    kfree((ring as void *));
    kfree((dev as void *));
}}
"#
    )
}

/// The watchdog driver containing the second seeded real blocking bug: its
/// interrupt handler calls a helper that sleeps.
pub const WATCHDOG: &str = r#"
// ---- drivers/watchdog.kc ----------------------------------------------------
global watchdog_ticks: u32 = 0;
global watchdog_completion: u32 = 0;

#[subsystem("drivers/watchdog")]
fn watchdog_sync() {
    // Waits for the hardware to acknowledge the ping.
    msleep(1);
    complete(&watchdog_completion);
}

// REAL BUG 2: the interrupt handler reaches a sleeping helper.
#[irq_handler] #[subsystem("drivers/watchdog")]
fn watchdog_tick() {
    watchdog_ticks = watchdog_ticks + 1;
    if ((watchdog_ticks % 8) == 0) {
        watchdog_sync();
    }
}
"#;

/// Generates one BlockStop false-positive group.
///
/// Each group has an operations table type with a `submit` function pointer,
/// a blocking implementation (used only from process context) and a fast
/// implementation (used from the polling path). Because the points-to
/// analysis is field-based rather than object-sensitive, the polling path —
/// which runs under a spinlock — appears to be able to call the blocking
/// implementation, yielding a false positive that is silenced by a run-time
/// assertion on `blk{index}_submit_wait`.
pub fn fp_group_source(index: usize) -> String {
    format!(
        r#"
// ---- drivers/blk{index}.kc --------------------------------------------------
struct blk{index}_ops {{
    submit: fnptr(u32) -> i32;
}}

global blk{index}_sync_ops: struct blk{index}_ops;
global blk{index}_poll_ops: struct blk{index}_ops;
global blk{index}_lock: u32 = 0;
global blk{index}_done: u32 = 0;
global blk{index}_completed: u32 = 0;

#[subsystem("drivers/blk{index}")]
fn blk{index}_submit_wait(sector: u32) -> i32 {{
    // Process-context submission: sleeps until the controller finishes.
    wait_for_completion(&blk{index}_done);
    blk{index}_completed = blk{index}_completed + sector;
    return 0;
}}

#[subsystem("drivers/blk{index}")]
fn blk{index}_submit_fast(sector: u32) -> i32 {{
    // Polling-mode submission: pure MMIO, never sleeps.
    iowrite32(4096 + {index}, sector);
    blk{index}_completed = blk{index}_completed + 1;
    return 0;
}}

#[subsystem("drivers/blk{index}")]
fn blk{index}_register() {{
    blk{index}_sync_ops.submit = blk{index}_submit_wait;
    blk{index}_poll_ops.submit = blk{index}_submit_fast;
}}

#[subsystem("drivers/blk{index}")]
fn blk{index}_process_io(sector: u32) -> i32 {{
    // Process context: free to sleep.
    return blk{index}_sync_ops.submit(sector);
}}

#[subsystem("drivers/blk{index}")]
fn blk{index}_poll(sector: u32) -> i32 {{
    // Called with the queue lock held; only the fast implementation is ever
    // installed in `poll_ops`, but a field-based points-to analysis cannot
    // tell the two tables apart (the paper's false-positive scenario).
    spin_lock(&blk{index}_lock);
    let r: i32 = blk{index}_poll_ops.submit(sector);
    spin_unlock(&blk{index}_lock);
    return r;
}}
"#
    )
}

/// Generates one bad-free defect site fixed by nulling a cache pointer.
///
/// The object is registered in two places (a lookup list and a fast-path
/// cache); the release path clears only the list, so the free fails its
/// reference-count check until the fix nulls the cache slot too.
pub fn cache_defect_source(index: usize) -> String {
    format!(
        r#"
// ---- fs/cache{index}.kc -----------------------------------------------------
struct cached_obj_{index} {{
    id: u32;
    refs: u32;
    blob: u8 *;
}}

global objlist_{index}: struct cached_obj_{index} *;
global objcache_{index}: struct cached_obj_{index} *;

#[subsystem("fs/cache")]
fn cache{index}_register() -> i32 {{
    let o: struct cached_obj_{index} * = (kmalloc(sizeof(struct cached_obj_{index}), 16) as struct cached_obj_{index} *);
    if (o == null) {{ return -12; }}
    o->id = {index};
    o->blob = (kmalloc(32, 16) as u8 *);
    objlist_{index} = o;
    objcache_{index} = o;
    return 0;
}}

#[subsystem("fs/cache")]
fn cache{index}_release() {{
    let victim: struct cached_obj_{index} * = objlist_{index};
    if (victim == null) {{ return; }}
    objlist_{index} = null;
    let blob: u8 * = victim->blob;
    victim->blob = null;
    kfree((blob as void *));
    // BUG: objcache_{index} still references the object being freed.
    kfree((victim as void *));
}}
"#
    )
}

/// Generates one bad-free defect site fixed by a delayed-free scope: a
/// two-node ring whose nodes reference each other during teardown.
pub fn ring_defect_source(index: usize) -> String {
    format!(
        r#"
// ---- drivers/ring{index}.kc -------------------------------------------------
struct ring_node_{index} {{
    seq: u32;
    peer: struct ring_node_{index} *;
}}

global ring{index}_a: struct ring_node_{index} *;
global ring{index}_b: struct ring_node_{index} *;

#[subsystem("drivers/ring")]
fn ring{index}_setup() -> i32 {{
    let a: struct ring_node_{index} * = (kmalloc(sizeof(struct ring_node_{index}), 16) as struct ring_node_{index} *);
    let b: struct ring_node_{index} * = (kmalloc(sizeof(struct ring_node_{index}), 16) as struct ring_node_{index} *);
    if (a == null || b == null) {{ return -12; }}
    a->seq = {index};
    b->seq = {index} + 1;
    a->peer = b;
    b->peer = a;
    ring{index}_a = a;
    ring{index}_b = b;
    return 0;
}}

#[subsystem("drivers/ring")]
fn ring{index}_teardown() {{
    let a: struct ring_node_{index} * = ring{index}_a;
    let b: struct ring_node_{index} * = ring{index}_b;
    if (a == null || b == null) {{ return; }}
    ring{index}_a = null;
    ring{index}_b = null;
    // BUG: each node still references its peer when it is freed; the fix is
    // to delay the frees (and their checks) to the end of the teardown.
    kfree((a as void *));
    a = null;
    b->peer = null;
    kfree((b as void *));
}}
"#
    )
}

/// A pointer-handoff chain: `depth` chained pointer copies written in
/// *reverse* program order, so a naive rescan-in-order points-to solver
/// needs one full round per link to carry the pointee to the far end
/// (a worklist solver with difference propagation stays linear). Used by
/// the solver-scaling benchmark (`chain_depth` in [`crate::KernelConfig`])
/// and mirrors the shape of the deep-chain regression test in
/// `ivy-analysis`.
pub fn chain_source(index: usize, depth: u32) -> String {
    let mut out = String::with_capacity(64 * depth as usize);
    out.push_str(&format!(
        "\n// ---- stress/chain{index}.kc ----------------------------------------------------\n"
    ));
    out.push_str(&format!("global chain{index}_seed: u8[64];\n\n"));
    out.push_str(&format!(
        "#[subsystem(\"stress\")]\nfn chain{index}_shift() -> u8 * {{\n"
    ));
    for i in (0..=depth).rev() {
        out.push_str(&format!("    let h{i}: u8 * = null;\n"));
    }
    // Adversarial order: the far end of the chain is assigned first.
    for i in (1..=depth).rev() {
        out.push_str(&format!("    h{i} = h{};\n", i - 1));
    }
    out.push_str(&format!("    h0 = &chain{index}_seed[0];\n"));
    out.push_str(&format!("    return h{depth};\n}}\n"));
    out
}
