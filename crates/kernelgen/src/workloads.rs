//! Workload definitions: the hbench-style microbenchmark suite (Table 1),
//! the fork / module-loading overhead workloads (E4), and the boot /
//! light-use phases (E3).
//!
//! Each workload is a KC entry function taking `(iters, size)` plus a Rust
//! descriptor giving its paper name, category, and default parameters.

use serde::{Deserialize, Serialize};

/// Whether an hbench benchmark measures bandwidth or latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// `bw_*`: bulk-throughput benchmarks.
    Bandwidth,
    /// `lat_*`: per-operation latency benchmarks.
    Latency,
}

/// A runnable workload: the paper-facing name, the KC entry point, and the
/// default `(iters, size)` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Name as it appears in the paper's Table 1 (e.g. `bw_mem_cp`).
    pub name: String,
    /// KC entry function.
    pub entry: String,
    /// Iteration count passed as the first argument.
    pub iters: u32,
    /// Size parameter passed as the second argument.
    pub size: u32,
    /// Bandwidth or latency.
    pub category: Category,
}

impl Workload {
    fn new(name: &str, entry: &str, iters: u32, size: u32, category: Category) -> Self {
        Workload {
            name: name.into(),
            entry: entry.into(),
            iters,
            size,
            category,
        }
    }

    /// Scales the iteration count (used to shrink test runs / grow bench
    /// runs) without changing the workload's character.
    pub fn scaled(&self, factor: f64) -> Workload {
        let iters = ((self.iters as f64 * factor).round() as u32).max(1);
        Workload {
            iters,
            ..self.clone()
        }
    }
}

/// The 21 hbench benchmarks of Table 1, with default parameters sized so a
/// full sweep completes quickly on the VM while still being dominated by the
/// intended kernel path.
pub fn hbench_suite() -> Vec<Workload> {
    use Category::{Bandwidth, Latency};
    vec![
        Workload::new("bw_bzero", "wl_bw_bzero", 64, 4096, Bandwidth),
        Workload::new("bw_file_rd", "wl_bw_file_rd", 64, 4096, Bandwidth),
        Workload::new("bw_mem_cp", "wl_bw_mem_cp", 64, 4096, Bandwidth),
        Workload::new("bw_mem_rd", "wl_bw_mem_rd", 64, 4096, Bandwidth),
        Workload::new("bw_mem_wr", "wl_bw_mem_wr", 64, 4096, Bandwidth),
        Workload::new("bw_mmap_rd", "wl_bw_mmap_rd", 32, 2048, Bandwidth),
        Workload::new("bw_pipe", "wl_bw_pipe", 64, 2048, Bandwidth),
        Workload::new("bw_tcp", "wl_bw_tcp", 16, 4096, Bandwidth),
        Workload::new("lat_connect", "wl_lat_connect", 128, 0, Latency),
        Workload::new("lat_ctx", "wl_lat_ctx", 256, 2, Latency),
        Workload::new("lat_ctx2", "wl_lat_ctx2", 256, 8, Latency),
        Workload::new("lat_fs", "wl_lat_fs", 128, 64, Latency),
        Workload::new("lat_fslayer", "wl_lat_fslayer", 256, 16, Latency),
        Workload::new("lat_mmap", "wl_lat_mmap", 128, 64, Latency),
        Workload::new("lat_pipe", "wl_lat_pipe", 256, 1, Latency),
        Workload::new("lat_proc", "wl_lat_proc", 64, 256, Latency),
        Workload::new("lat_rpc", "wl_lat_rpc", 128, 64, Latency),
        Workload::new("lat_sig", "wl_lat_sig", 256, 0, Latency),
        Workload::new("lat_syscall", "wl_lat_syscall", 512, 0, Latency),
        Workload::new("lat_tcp", "wl_lat_tcp", 128, 64, Latency),
        Workload::new("lat_udp", "wl_lat_udp", 128, 32, Latency),
    ]
}

/// The fork overhead workload of experiment E4.
pub fn fork_workload() -> Workload {
    Workload::new("fork", "wl_fork", 96, 256, Category::Latency)
}

/// The module-loading overhead workload of experiment E4.
pub fn module_load_workload() -> Workload {
    Workload::new("module_load", "wl_module_load", 64, 1024, Category::Latency)
}

/// The boot phase (E3): `iters` controls how many boot "cycles" run.
pub fn boot_workload(cycles: u32) -> Workload {
    Workload::new("boot", "kernel_boot", cycles, 0, Category::Latency)
}

/// The light-use phase (E3): idling plus copying a kernel in over the
/// network and writing it to disk.
pub fn light_use_workload(rounds: u32) -> Workload {
    Workload::new(
        "light_use",
        "kernel_light_use",
        rounds,
        1460,
        Category::Latency,
    )
}

/// The KC source of every workload entry point (shared scratch buffers plus
/// one function per benchmark).
pub const WORKLOAD_SOURCE: &str = r#"
// ---- workloads.kc -----------------------------------------------------------
global wl_src: u8[4096];
global wl_dst: u8[4096];
global wl_pipe_ready: u32 = 0;

#[subsystem("workloads")]
fn wl_prepare() {
    if (wl_pipe_ready == 0) {
        pipe_init(8192);
        register_filesystems();
        wl_pipe_ready = 1;
    }
}

#[subsystem("workloads")]
fn wl_bw_bzero(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let n: u32 = size;
    if (n > 4096) { n = 4096; }
    let i: u32 = 0;
    while (i < iters) {
        kmemset(&wl_dst[0], 0, n);
        i = i + 1;
    }
    return i;
}

#[subsystem("workloads")]
fn wl_bw_file_rd(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let n: u32 = size;
    if (n > 4096) { n = 4096; }
    vfs_create(7, n);
    vfs_write(7, &wl_src[0], n);
    let i: u32 = 0;
    let total: u32 = 0;
    while (i < iters) {
        let r: i32 = vfs_read(7, &wl_dst[0], n);
        total = total + (r as u32);
        i = i + 1;
    }
    vfs_unlink(7);
    return total;
}

#[subsystem("workloads")]
fn wl_bw_mem_cp(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let n: u32 = size;
    if (n > 4096) { n = 4096; }
    let i: u32 = 0;
    while (i < iters) {
        kmemcpy(&wl_dst[0], &wl_src[0], n);
        i = i + 1;
    }
    return i;
}

#[subsystem("workloads")]
fn wl_bw_mem_rd(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let n: u32 = size;
    if (n > 4096) { n = 4096; }
    let acc: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        acc = acc + checksum32(&wl_src[0], n);
        i = i + 1;
    }
    return acc;
}

#[subsystem("workloads")]
fn wl_bw_mem_wr(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let n: u32 = size;
    if (n > 4096) { n = 4096; }
    let i: u32 = 0;
    while (i < iters) {
        kmemset(&wl_dst[0], 171, n);
        i = i + 1;
    }
    return i;
}

#[subsystem("workloads")]
fn wl_bw_mmap_rd(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let acc: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        let vma: struct vm_area * = mmap_region(size);
        if (vma != null) {
            acc = acc + mm_touch_pages(vma, 4);
            munmap_region(vma);
        }
        i = i + 1;
    }
    return acc;
}

#[subsystem("workloads")]
fn wl_bw_pipe(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let n: u32 = size;
    if (n > 4096) { n = 4096; }
    let total: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        pipe_write(&wl_src[0], n);
        total = total + (pipe_read(&wl_dst[0], n) as u32);
        i = i + 1;
    }
    return total;
}

#[subsystem("workloads")]
fn wl_bw_tcp(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let n: u32 = size;
    if (n > 4096) { n = 4096; }
    let total: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        total = total + (tcp_sendmsg(&wl_src[0], n) as u32);
        i = i + 1;
    }
    return total;
}

#[subsystem("workloads")]
fn wl_lat_connect(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let i: u32 = 0;
    while (i < iters) {
        tcp_connect();
        i = i + 1;
    }
    return tcp_connections + size;
}

#[subsystem("workloads")]
fn wl_lat_ctx(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let t: u32 = 0;
    while (t < size) {
        do_fork(128);
        t = t + 1;
    }
    let i: u32 = 0;
    while (i < iters) {
        context_switch();
        i = i + 1;
    }
    return (ctx_switches as u32);
}

#[subsystem("workloads")]
fn wl_lat_ctx2(iters: u32, size: u32) -> u32 {
    return wl_lat_ctx(iters, size);
}

#[subsystem("workloads")]
fn wl_lat_fs(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let i: u32 = 0;
    while (i < iters) {
        vfs_create(i % 128, size);
        vfs_write(i % 128, &wl_src[0], size % 4097);
        vfs_unlink(i % 128);
        i = i + 1;
    }
    return vfs_files_created;
}

#[subsystem("workloads")]
fn wl_lat_fslayer(iters: u32, size: u32) -> u32 {
    wl_prepare();
    vfs_create(9, 256);
    vfs_write(9, &wl_src[0], 256);
    let total: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        total = total + (vfs_read(9, &wl_dst[0], size) as u32);
        i = i + 1;
    }
    vfs_unlink(9);
    return total;
}

#[subsystem("workloads")]
fn wl_lat_mmap(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let i: u32 = 0;
    while (i < iters) {
        let vma: struct vm_area * = mmap_region(size);
        if (vma != null) {
            vma->pages[0] = 1;
            munmap_region(vma);
        }
        i = i + 1;
    }
    return i;
}

#[subsystem("workloads")]
fn wl_lat_pipe(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let total: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        pipe_write(&wl_src[0], size);
        total = total + (pipe_read(&wl_dst[0], size) as u32);
        i = i + 1;
    }
    return total;
}

#[subsystem("workloads")]
fn wl_lat_proc(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let i: u32 = 0;
    while (i < iters) {
        let pid: u32 = do_fork(size);
        if (pid == 0) { printk("fork failed"); }
        sys_exit();
        i = i + 1;
    }
    return next_pid;
}

#[subsystem("workloads")]
fn wl_lat_rpc(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let total: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        udp_sendmsg(&wl_src[0], size);
        total = total + (udp_recvmsg(&wl_dst[0], size) as u32);
        i = i + 1;
    }
    return total;
}

#[subsystem("workloads")]
fn wl_lat_sig(iters: u32, size: u32) -> u32 {
    wl_prepare();
    do_fork(128);
    let delivered: u32 = size;
    let i: u32 = 0;
    while (i < iters) {
        send_signal(next_pid - 1, i % 31);
        if (runqueue != null) {
            delivered = delivered + deliver_signals(runqueue);
        }
        i = i + 1;
    }
    return delivered;
}

#[subsystem("workloads")]
fn wl_lat_syscall(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let acc: u32 = size;
    let i: u32 = 0;
    while (i < iters) {
        acc = acc + sys_getpid();
        i = i + 1;
    }
    return acc;
}

#[subsystem("workloads")]
fn wl_lat_tcp(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let total: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        total = total + (tcp_sendmsg(&wl_src[0], size) as u32);
        i = i + 1;
    }
    return total;
}

#[subsystem("workloads")]
fn wl_lat_udp(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let total: u32 = 0;
    let i: u32 = 0;
    while (i < iters) {
        udp_sendmsg(&wl_src[0], size);
        total = total + (udp_recvmsg(&wl_dst[0], size) as u32);
        i = i + 1;
    }
    return total;
}

#[subsystem("workloads")]
fn wl_fork(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let i: u32 = 0;
    while (i < iters) {
        let pid: u32 = do_fork(size);
        if (pid == 0) { printk("fork failed"); }
        sys_exit();
        i = i + 1;
    }
    return next_pid;
}

#[subsystem("workloads")]
fn wl_module_load(iters: u32, size: u32) -> u32 {
    wl_prepare();
    let i: u32 = 0;
    while (i < iters) {
        load_module(i, size);
        unload_module();
        i = i + 1;
    }
    return module_count;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1_rows() {
        let suite = hbench_suite();
        assert_eq!(suite.len(), 21, "Table 1 has 21 benchmarks");
        let bw = suite
            .iter()
            .filter(|w| w.category == Category::Bandwidth)
            .count();
        let lat = suite
            .iter()
            .filter(|w| w.category == Category::Latency)
            .count();
        assert_eq!(bw, 8);
        assert_eq!(lat, 13);
        // Names are unique and every entry function is distinct except the
        // ctx/ctx2 pair which share a core.
        let mut names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn scaling_preserves_identity() {
        let w = fork_workload();
        let s = w.scaled(0.25);
        assert_eq!(s.name, w.name);
        assert_eq!(s.iters, 24);
        assert!(w.scaled(0.0001).iters >= 1);
    }

    #[test]
    fn workload_source_defines_every_entry() {
        for w in hbench_suite() {
            assert!(
                WORKLOAD_SOURCE.contains(&format!("fn {}(", w.entry)),
                "missing entry for {}",
                w.name
            );
        }
        assert!(WORKLOAD_SOURCE.contains("fn wl_fork("));
        assert!(WORKLOAD_SOURCE.contains("fn wl_module_load("));
    }
}
