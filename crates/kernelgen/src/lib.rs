//! `ivy-kernelgen` — the synthetic Linux-like kernel corpus and its workloads.
//!
//! The paper evaluates its tools on a stripped-down Linux 2.6.15.5 kernel
//! (443 kLoC) booted in VMware and exercised with hbench. This crate builds
//! the stand-in: a deterministic KC kernel with the same subsystem structure
//! and the same idioms the tools target, a seeded defect population whose
//! ground truth is known exactly, and workload entry points for every
//! experiment:
//!
//! * [`corpus`] — the KC sources: `lib/`, `kernel/` (scheduler, fork,
//!   signals, modules), `mm/`, `fs/` (VFS + ext2-like + procfs + dcache +
//!   pipes), `net/ipv4`, and generated `drivers/*` including the two seeded
//!   blocking bugs, the BlockStop false-positive groups, and the bad-free
//!   defect sites.
//! * [`workloads`] — the 21 hbench benchmarks of Table 1, the fork and
//!   module-loading workloads of E4, and the boot / light-use phases of E3.
//! * [`ground_truth`] — exactly which defects were planted and how each is
//!   fixed, so the experiment harness can classify tool findings.
//!
//! # Examples
//!
//! ```
//! use ivy_kernelgen::{KernelConfig, KernelBuild};
//!
//! let build = KernelBuild::generate(&KernelConfig::small());
//! assert!(build.program.functions.len() > 80);
//! assert_eq!(build.ground_truth.blocking_bugs.len(), 2);
//! assert!(ivy_cmir::typecheck::validate_program(&build.program).is_ok());
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod ground_truth;
pub mod subsample;
pub mod workloads;

pub use ground_truth::{BadFreeDefect, BlockingBug, GroundTruth};
pub use subsample::subsample_program;
pub use workloads::{
    boot_workload, fork_workload, hbench_suite, light_use_workload, module_load_workload, Category,
    Workload,
};

use ivy_cmir::parser::parse_program;
use ivy_cmir::pretty::pretty_program;
use ivy_cmir::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Size and content knobs for the generated kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Seed for the deterministic size/parameter choices baked into the
    /// corpus (boot file sizes, module sizes, ...).
    pub seed: u64,
    /// Number of synthetic ethernet drivers.
    pub drivers: usize,
    /// Number of BlockStop false-positive groups (each silenced by one
    /// run-time assertion; the paper needed 15).
    pub fp_groups: usize,
    /// Number of bad-free defects fixed by nulling a cache pointer
    /// (the paper fixed 27).
    pub cache_defects: usize,
    /// Number of bad-free defects fixed by a delayed-free scope
    /// (the paper added 26).
    pub ring_defects: usize,
    /// Number of boot cycles performed by `kernel_boot` (each cycle forks,
    /// creates/writes/reads/unlinks files, sends packets, loads a module,
    /// and maps/unmaps memory).
    pub boot_cycles: u32,
    /// Number of pointer-handoff stress chains (see
    /// [`corpus::chain_source`]); 0 in the standard corpora.
    pub chains: usize,
    /// Length of each stress chain. Chains are written in reverse program
    /// order, the adversarial case for naive points-to solving.
    pub chain_depth: u32,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            seed: 42,
            drivers: 4,
            fp_groups: 15,
            cache_defects: 27,
            ring_defects: 26,
            boot_cycles: 48,
            chains: 0,
            chain_depth: 0,
        }
    }
}

impl KernelConfig {
    /// A paper-shaped configuration (defaults).
    pub fn paper() -> Self {
        KernelConfig::default()
    }

    /// A reduced configuration for fast unit tests.
    pub fn small() -> Self {
        KernelConfig {
            seed: 7,
            drivers: 2,
            fp_groups: 3,
            cache_defects: 4,
            ring_defects: 3,
            boot_cycles: 8,
            chains: 0,
            chain_depth: 0,
        }
    }
}

/// A generated kernel: the program, its ground truth, and the configuration
/// that produced it.
#[derive(Debug, Clone)]
pub struct KernelBuild {
    /// The whole-kernel KC program (annotated but not yet deputized).
    pub program: Program,
    /// Ground truth about the seeded defects.
    pub ground_truth: GroundTruth,
    /// The configuration used.
    pub config: KernelConfig,
}

impl KernelBuild {
    /// Generates the kernel for a configuration. Panics only if the generator
    /// itself emits syntactically invalid KC (covered by tests).
    pub fn generate(config: &KernelConfig) -> KernelBuild {
        let source = kernel_source(config);
        let program = parse_program(&source)
            .unwrap_or_else(|e| panic!("generated kernel does not parse: {e}"));
        let ground_truth = build_ground_truth(config);
        KernelBuild {
            program,
            ground_truth,
            config: config.clone(),
        }
    }

    /// The concatenated KC source of the kernel (useful for inspection and
    /// for the line-count statistics).
    pub fn source(&self) -> String {
        pretty_program(&self.program)
    }

    /// Number of source lines of the kernel (pretty-printed form).
    pub fn line_count(&self) -> usize {
        self.source().lines().count()
    }

    /// The functions that should receive BlockStop run-time assertions to
    /// silence the corpus's false positives.
    pub fn asserted_functions(&self) -> BTreeSet<String> {
        self.ground_truth.false_positive_asserts.clone()
    }
}

/// Produces the full KC source for a configuration.
pub fn kernel_source(config: &KernelConfig) -> String {
    let mut src = String::with_capacity(256 * 1024);
    src.push_str(corpus::PRELUDE);
    src.push_str(corpus::LIB);
    src.push_str(corpus::SCHED);
    src.push_str(corpus::MM);
    src.push_str(corpus::FS);
    src.push_str(corpus::NET);
    src.push_str(corpus::MODULE);
    src.push_str(corpus::WATCHDOG);
    for i in 0..config.drivers {
        src.push_str(&corpus::driver_source(i));
    }
    for i in 0..config.fp_groups {
        src.push_str(&corpus::fp_group_source(i));
    }
    for i in 0..config.cache_defects {
        src.push_str(&corpus::cache_defect_source(i));
    }
    for i in 0..config.ring_defects {
        src.push_str(&corpus::ring_defect_source(i));
    }
    for i in 0..config.chains {
        src.push_str(&corpus::chain_source(i, config.chain_depth));
    }
    src.push_str(&boot_source(config));
    src.push_str(workloads::WORKLOAD_SOURCE);
    src
}

/// Generates `init/main.kc`: the boot sequence and the light-use phase.
fn boot_source(config: &KernelConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let table_len = 16usize;
    let sizes: Vec<u32> = (0..table_len).map(|_| rng.gen_range(64..1024u32)).collect();
    let sizes_init: String = sizes
        .iter()
        .enumerate()
        .map(|(i, s)| format!("    boot_sizes[{i}] = {s};\n"))
        .collect();

    let mut out = String::new();
    out.push_str(
        "\n// ---- init/main.kc ----------------------------------------------------------\n",
    );
    out.push_str(&format!("global boot_sizes: u32[{table_len}];\n"));
    out.push_str("global boot_completed: u32 = 0;\n\n");

    // Registration of every generated component.
    out.push_str("#[subsystem(\"init\")]\nfn boot_register_all() {\n");
    out.push_str(&sizes_init);
    out.push_str("    register_filesystems();\n    pipe_init(8192);\n");
    for i in 0..config.fp_groups {
        out.push_str(&format!("    blk{i}_register();\n"));
    }
    for i in 0..config.drivers {
        out.push_str(&format!("    eth{i}_probe();\n"));
    }
    out.push_str("}\n\n");

    // Defect exercising: registration + release of every defect site.
    out.push_str("#[subsystem(\"init\")]\nfn boot_exercise_caches() {\n");
    for i in 0..config.cache_defects {
        out.push_str(&format!(
            "    cache{i}_register();\n    cache{i}_release();\n"
        ));
    }
    for i in 0..config.ring_defects {
        out.push_str(&format!("    ring{i}_setup();\n    ring{i}_teardown();\n"));
    }
    out.push_str("}\n\n");

    // Driver teardown (including the reset path with the seeded bug).
    out.push_str("#[subsystem(\"init\")]\nfn boot_teardown_drivers() {\n");
    for i in 0..config.drivers {
        out.push_str(&format!("    eth{i}_reset();\n    eth{i}_remove();\n"));
    }
    out.push_str("}\n\n");

    // Process-context block-device traffic (exercises the blocking submit
    // implementations from a legal context).
    out.push_str("#[subsystem(\"init\")]\nfn boot_block_io(rounds: u32) {\n    let i: u32 = 0;\n    while (i < rounds) {\n");
    for i in 0..config.fp_groups.min(4) {
        out.push_str(&format!("        blk{i}_process_io(i);\n"));
    }
    out.push_str("        i = i + 1;\n    }\n}\n\n");

    out.push_str(&format!(
        r#"#[subsystem("init")]
fn kernel_boot(cycles: u32, spare: u32) -> u32 {{
    boot_register_all();
    let i: u32 = 0;
    while (i < cycles) {{
        let size: u32 = boot_sizes[i % {table_len}];
        let pid: u32 = do_fork(256);
        if (pid == 0) {{ printk("fork failed during boot"); }}
        vfs_create(i % 128, size);
        vfs_write(i % 128, &wl_src[0], size);
        vfs_read(i % 128, &wl_dst[0], size);
        dcache_lookup(i);
        udp_sendmsg(&wl_src[0], 64);
        udp_recvmsg(&wl_dst[0], 64);
        load_module(i, size);
        let vma: struct vm_area * = mmap_region(128);
        if (vma != null) {{ munmap_region(vma); }}
        unload_module();
        vfs_unlink(i % 128);
        sys_exit();
        watchdog_tick();
        i = i + 1;
    }}
    boot_block_io(4);
    // A handful of longer-lived files get dcache entries; the dcache is
    // pruned (dropping its inode references) before they are unlinked.
    let j: u32 = 0;
    while (j < 4) {{
        vfs_create(120 + j, 64);
        if (file_table[120 + j] != null) {{
            dcache_insert(file_table[120 + j], 1000 + j);
        }}
        j = j + 1;
    }}
    dcache_prune();
    let k: u32 = 0;
    while (k < 4) {{
        vfs_unlink(120 + k);
        k = k + 1;
    }}
    boot_exercise_caches();
    boot_teardown_drivers();
    boot_completed = 1 + spare;
    return vfs_files_created;
}}

#[subsystem("init")]
fn kernel_light_use(rounds: u32, chunk: u32) -> u32 {{
    // Idle for a while, then copy a new kernel in over the network and write
    // it to disk (the paper's "light use" phase).
    let total: u32 = 0;
    let i: u32 = 0;
    while (i < rounds) {{
        tcp_connect();
        total = total + (tcp_sendmsg(&wl_src[0], chunk) as u32);
        vfs_create(64 + (i % 32), chunk);
        vfs_write(64 + (i % 32), &wl_src[0], chunk);
        vfs_read(64 + (i % 32), &wl_dst[0], chunk);
        vfs_unlink(64 + (i % 32));
        context_switch();
        i = i + 1;
    }}
    return total;
}}
"#
    ));
    out
}

fn build_ground_truth(config: &KernelConfig) -> GroundTruth {
    let mut gt = GroundTruth::default();
    gt.blocking_bugs.push(BlockingBug {
        caller: "eth0_reset".to_string(),
        callee: "kmalloc".to_string(),
        description: "GFP_WAIT allocation inside spin_lock_irqsave region".to_string(),
    });
    gt.blocking_bugs.push(BlockingBug {
        caller: "watchdog_tick".to_string(),
        callee: "watchdog_sync".to_string(),
        description: "interrupt handler reaches msleep through watchdog_sync".to_string(),
    });
    for i in 0..config.fp_groups {
        gt.false_positive_asserts
            .insert(format!("blk{i}_submit_wait"));
    }
    for i in 0..config.cache_defects {
        gt.bad_free_defects.push(BadFreeDefect {
            function: format!("cache{i}_release"),
            null_lvalue: Some(format!("objcache_{i}")),
            needs_delayed_scope: false,
        });
    }
    for i in 0..config.ring_defects {
        gt.bad_free_defects.push(BadFreeDefect {
            function: format!("ring{i}_teardown"),
            null_lvalue: None,
            needs_delayed_scope: true,
        });
    }
    gt.trusted_functions.insert("ioread32".to_string());
    gt.trusted_functions.insert("iowrite32".to_string());
    gt
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::typecheck::validate_program;
    use ivy_vm::{Value, Vm, VmConfig};

    #[test]
    fn small_kernel_parses_and_validates() {
        let build = KernelBuild::generate(&KernelConfig::small());
        let v = validate_program(&build.program);
        assert!(
            v.is_ok(),
            "validation errors: {:#?}",
            &v.errors[..v.errors.len().min(5)]
        );
        assert!(
            build.line_count() > 1500,
            "corpus too small: {} lines",
            build.line_count()
        );
    }

    #[test]
    fn paper_kernel_is_larger_and_deterministic() {
        let a = KernelBuild::generate(&KernelConfig::paper());
        let b = KernelBuild::generate(&KernelConfig::paper());
        assert_eq!(a.source(), b.source(), "generation must be deterministic");
        assert!(a.line_count() > KernelBuild::generate(&KernelConfig::small()).line_count());
        assert_eq!(a.ground_truth.bad_free_defects.len(), 27 + 26);
        assert_eq!(a.asserted_functions().len(), 15);
    }

    #[test]
    fn different_seeds_change_boot_parameters_only() {
        let mut cfg_a = KernelConfig::small();
        cfg_a.seed = 1;
        let mut cfg_b = KernelConfig::small();
        cfg_b.seed = 2;
        let a = KernelBuild::generate(&cfg_a);
        let b = KernelBuild::generate(&cfg_b);
        assert_ne!(a.source(), b.source());
        assert_eq!(a.program.functions.len(), b.program.functions.len());
    }

    #[test]
    fn boot_runs_on_the_vm_and_triggers_ground_truth_defects() {
        let cfg = KernelConfig::small();
        let build = KernelBuild::generate(&cfg);
        let mut vm = Vm::new(build.program.clone(), VmConfig::ccounted(false)).unwrap();
        vm.run(
            "kernel_boot",
            vec![Value::Int(i64::from(cfg.boot_cycles)), Value::Int(0)],
        )
        .unwrap();
        // Every cache and ring defect produces exactly one bad free.
        assert_eq!(
            vm.stats.frees_bad,
            (cfg.cache_defects + cfg.ring_defects) as u64,
            "bad frees: {:?}",
            vm.stats.bad_frees.len()
        );
        assert!(vm.stats.frees_good > vm.stats.frees_bad);
        // The two seeded blocking bugs are observable at run time.
        let violators: std::collections::BTreeSet<String> = vm
            .stats
            .blocking_violations
            .iter()
            .map(|v| v.caller.clone())
            .collect();
        assert!(
            violators.contains("eth0_reset"),
            "violations: {violators:?}"
        );
        // The watchdog bug is attributed to the immediate caller of msleep.
        assert!(
            violators.contains("watchdog_sync"),
            "violations: {violators:?}"
        );
    }

    #[test]
    fn hbench_workloads_run_on_the_vm() {
        let build = KernelBuild::generate(&KernelConfig::small());
        // Spot-check a bandwidth and a latency workload end to end.
        for name in ["bw_mem_cp", "lat_udp", "lat_syscall"] {
            let w = hbench_suite()
                .into_iter()
                .find(|w| w.name == name)
                .unwrap()
                .scaled(0.1);
            let mut vm = Vm::new(build.program.clone(), VmConfig::baseline()).unwrap();
            vm.run(
                &w.entry,
                vec![
                    Value::Int(i64::from(w.iters)),
                    Value::Int(i64::from(w.size)),
                ],
            )
            .unwrap();
            assert!(vm.cycles() > 0, "{name} did no work");
        }
    }

    #[test]
    fn chain_stress_corpus_parses_validates_and_runs() {
        let mut cfg = KernelConfig::small();
        cfg.chains = 2;
        cfg.chain_depth = 12;
        let build = KernelBuild::generate(&cfg);
        assert!(validate_program(&build.program).is_ok());
        assert!(build.program.function("chain1_shift").is_some());
        // The chain body is executable KC, not just analyzable.
        let mut vm = Vm::new(build.program.clone(), VmConfig::baseline()).unwrap();
        vm.run("chain0_shift", vec![]).unwrap();
        // Default configs carry no chains, so existing corpora are unchanged.
        assert!(KernelBuild::generate(&KernelConfig::small())
            .program
            .function("chain0_shift")
            .is_none());
    }

    #[test]
    fn annotation_burden_is_a_small_fraction() {
        let build = KernelBuild::generate(&KernelConfig::paper());
        let burden = ivy_deputy::stats::burden(&build.program);
        assert!(
            burden.annotated_fraction() < 0.10,
            "{}",
            burden.annotated_fraction()
        );
        assert!(
            burden.trusted_fraction() < 0.05,
            "{}",
            burden.trusted_fraction()
        );
        assert!(burden.annotated_lines > 0);
        assert!(burden.trusted_lines > 0);
    }
}
