//! `ivy-daemon` — analysis that lives with the kernel tree.
//!
//! Every consumer of the batch [`Engine`](ivy_engine::Engine) pays process
//! startup, cache reload, and a cold points-to solve per invocation. This
//! crate keeps one engine *resident*: a server owns the diagnostic cache,
//! context store, points-to constraint cache, and persist shards, and
//! serves many clients over a Unix-domain socket speaking a
//! length-prefixed JSON protocol ([`protocol`]). Three properties make it
//! more than a cache in a process:
//!
//! * **Pinned answers.** A daemon `analyze` runs the same default checker
//!   fleet as a batch run and returns the same stable serialization, so
//!   its `diagnostics_json` is byte-identical to
//!   `Report::diagnostics_json()` of `Engine::analyze` over the same
//!   program — resident state may make answers *fast*, never *different*
//!   (the differential-testing discipline, applied to the serving layer).
//!   One caveat, shared with the cross-process persist layer since it
//!   exists: every cache key is *span-insensitive* by design (a
//!   span-sensitive key would dirty the whole file on any line-shifting
//!   edit), so after an edit that moves later functions to new lines, a
//!   retained diagnostic keeps the span of the program state it was
//!   computed against — content, messages, and severities stay exact;
//!   only the line numbers of *unchanged* functions may lag until their
//!   results recompute. Span re-anchoring is a ROADMAP item.
//! * **Dependency-driven invalidation.** `notify_edit` diffs the edited
//!   source against the resident program at the input layer (per-function
//!   content hashes + the type environment) and discards only the
//!   transitive *dependents* of what changed, per the dependency edges the
//!   query db recorded while computing — everything else is re-served from
//!   memory. Content-keyed durable results are *revalidated* rather than
//!   dropped even when they are dependency-reachable.
//! * **Fleet-safe persistence.** The persist layer writes per-writer shard
//!   files (`<cache>/<namespace>/<writer>.json`), so concurrent daemon
//!   workers and batch runs racing a daemon merge losslessly instead of
//!   clobbering each other's flushes.
//!
//! # Quick session
//!
//! ```no_run
//! use ivy_daemon::{Client, Daemon, DaemonConfig};
//!
//! let handle = Daemon::spawn(
//!     DaemonConfig::new("/tmp/ivy.sock").with_cache_dir("target/ivy-cache"),
//! )
//! .unwrap();
//! let mut client = Client::connect(handle.socket()).unwrap();
//! let cold = client.analyze("fn f() { }").unwrap();
//! let warm = client.analyze("fn f() { }").unwrap(); // served resident
//! assert_eq!(cold.diagnostics_json, warm.diagnostics_json);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{AnalyzeOutcome, Client, EditOutcome, ExplainOutcome};
pub use server::{
    fleet_checkers, fleet_engine, fleet_engine_with, Daemon, DaemonConfig, DaemonHandle,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ivy-daemon-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn daemon_round_trips_a_small_program() {
        let handle = Daemon::spawn(DaemonConfig::new(socket_path("unit"))).unwrap();
        let mut client = Client::connect(handle.socket()).unwrap();
        let cold = client.analyze("fn f() { g(); } fn g() { }").unwrap();
        let warm = client.analyze("fn f() { g(); } fn g() { }").unwrap();
        assert_eq!(cold.diagnostics_json, warm.diagnostics_json);
        assert_eq!(cold.program_hash, warm.program_hash);
        assert!(warm.stats.ctx_reused, "repeat analyze reuses the context");

        let stats = client.stats().unwrap();
        assert_eq!(
            stats.get("analyzes").and_then(serde_json::Value::as_u64),
            Some(2)
        );
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn second_daemon_on_the_same_socket_fails_fast_without_unbinding_the_first() {
        let socket = socket_path("exclusive");
        let handle = Daemon::spawn(DaemonConfig::new(socket.clone())).unwrap();
        // The loser of the socket race must error out at the sidecar lock —
        // and must NOT unlink the path the winner is serving on (the
        // probe-then-remove TOCTOU this lock exists to close).
        let err = match Daemon::spawn(DaemonConfig::new(socket.clone())) {
            Err(err) => err,
            Ok(_) => panic!("a second daemon on a held socket must not start"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        let mut client = Client::connect(&socket).unwrap();
        assert!(client.analyze("fn f() { }").is_ok());
        client.shutdown().unwrap();
        handle.join();

        // With the first daemon gone the path is reclaimable.
        let handle = Daemon::spawn(DaemonConfig::new(socket)).unwrap();
        let mut client = Client::connect(handle.socket()).unwrap();
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn malformed_requests_get_error_responses_not_hangs() {
        let handle = Daemon::spawn(DaemonConfig::new(socket_path("errors"))).unwrap();
        let mut client = Client::connect(handle.socket()).unwrap();
        // Unknown command.
        let err = client
            .request(&serde_json::Value::from("not an object"))
            .unwrap_err();
        assert!(err.to_string().contains("cmd"));
        // Unparsable program.
        let mut c2 = Client::connect(handle.socket()).unwrap();
        assert!(c2.analyze("fn ) {").is_err());
        // Edit before any analyze.
        assert!(c2.notify_edit("fn f() { }").is_err());
        // The daemon survived all of it.
        assert!(c2.analyze("fn f() { }").is_ok());
        c2.shutdown().unwrap();
        handle.join();
    }
}
