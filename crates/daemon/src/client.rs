//! The client driver: typed request/response wrappers over one socket
//! connection.

use crate::protocol::{
    invalidation_from_value, read_frame, request, response_error, response_ok, write_frame,
};
use ivy_engine::{EngineStats, InvalidationStats};
use serde_json::Value;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One `analyze` answer.
#[derive(Debug, Clone)]
pub struct AnalyzeOutcome {
    /// Content hash of the analyzed program, as 16 hex digits.
    pub program_hash: String,
    /// The stable diagnostics serialization — byte-identical to
    /// `Report::diagnostics_json()` of a batch run over the same program.
    pub diagnostics_json: String,
    /// Number of diagnostics in the report.
    pub diagnostic_count: usize,
    /// The serving run's engine statistics.
    pub stats: EngineStats,
}

/// One `explain` answer: the derivation chain behind a points-to fact or
/// indirect-call resolution, replay-verified by the daemon before shipping.
#[derive(Debug, Clone)]
pub struct ExplainOutcome {
    /// The explained fact, e.g. `` `f::p` may point to `global x` ``.
    pub fact: String,
    /// The derivation chain, one human-readable line per link, seed first.
    pub rendered: Vec<String>,
    /// Number of links in the chain.
    pub chain_len: usize,
    /// Whether the daemon replayed the whole provenance store against the
    /// program's constraints before answering (always true on success —
    /// a failed replay is an error response).
    pub replay_verified: bool,
    /// Total derivation steps the resident solve recorded.
    pub provenance_facts: u64,
}

/// One `notify_edit` answer.
#[derive(Debug, Clone)]
pub struct EditOutcome {
    /// Content hash of the edited program, as 16 hex digits.
    pub program_hash: String,
    /// What the edit invalidated and what survived.
    pub invalidation: InvalidationStats,
}

/// A connected daemon client. One request at a time per client; open more
/// clients for concurrency (the daemon serves each connection on its own
/// thread).
pub struct Client {
    stream: UnixStream,
}

fn malformed(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed {what} response"),
    )
}

impl Client {
    /// Connects to a daemon socket.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// One request/response round-trip. A transport failure is an
    /// `io::Error`; a daemon-reported failure (`ok: false`) comes back as
    /// `ErrorKind::Other` carrying the daemon's message.
    pub fn request(&mut self, message: &Value) -> io::Result<Value> {
        write_frame(&mut self.stream, message)?;
        let response = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed mid-request")
        })?;
        if !response_ok(&response) {
            return Err(io::Error::other(response_error(&response)));
        }
        Ok(response)
    }

    fn source_request(&mut self, cmd: &str, source: &str) -> io::Result<Value> {
        let mut m = request(cmd);
        m.insert("source".into(), Value::from(source));
        self.request(&Value::Object(m))
    }

    /// Analyzes a program (KC source text) with the daemon's checker
    /// fleet.
    pub fn analyze(&mut self, source: &str) -> io::Result<AnalyzeOutcome> {
        let response = self.source_request("analyze", source)?;
        let text = |key: &str| {
            response
                .get(key)
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| malformed("analyze"))
        };
        Ok(AnalyzeOutcome {
            program_hash: text("program_hash")?,
            diagnostics_json: text("diagnostics_json")?,
            diagnostic_count: response
                .get("diagnostic_count")
                .and_then(Value::as_u64)
                .ok_or_else(|| malformed("analyze"))? as usize,
            stats: response
                .get("stats")
                .and_then(EngineStats::from_value)
                .ok_or_else(|| malformed("analyze"))?,
        })
    }

    /// The stable diagnostics serialization alone (lighter than
    /// [`Client::analyze`]; same caches serve it).
    pub fn diagnostics(&mut self, source: &str) -> io::Result<String> {
        let response = self.source_request("diagnostics", source)?;
        response
            .get("diagnostics_json")
            .and_then(Value::as_str)
            .map(String::from)
            .ok_or_else(|| malformed("diagnostics"))
    }

    /// Notifies the daemon of an edit (the full edited source). The daemon
    /// diffs it against the resident program and invalidates only the
    /// dependency-reachable cone.
    pub fn notify_edit(&mut self, source: &str) -> io::Result<EditOutcome> {
        let response = self.source_request("notify_edit", source)?;
        Ok(EditOutcome {
            program_hash: response
                .get("program_hash")
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| malformed("notify_edit"))?,
            invalidation: response
                .get("invalidation")
                .and_then(invalidation_from_value)
                .ok_or_else(|| malformed("notify_edit"))?,
        })
    }

    /// Asks the daemon *why* the resident static answer holds a fact:
    /// `lvalue` is either an indirect callee expression in `func` (the
    /// chain explains the call resolution) or a pointer slot (the chain
    /// explains one pointee — `target` picks which; `None` takes the
    /// first). Needs a daemon started with `--provenance` (or
    /// `IVY_PROVENANCE=1`) and a prior `analyze`.
    pub fn explain(
        &mut self,
        func: &str,
        lvalue: &str,
        target: Option<&str>,
    ) -> io::Result<ExplainOutcome> {
        let mut m = request("explain");
        m.insert("fn".into(), Value::from(func));
        m.insert("lvalue".into(), Value::from(lvalue));
        if let Some(t) = target {
            m.insert("target".into(), Value::from(t));
        }
        let response = self.request(&Value::Object(m))?;
        let rendered: Vec<String> = response
            .get("rendered")
            .and_then(Value::as_array)
            .ok_or_else(|| malformed("explain"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(String::from)
                    .ok_or_else(|| malformed("explain"))
            })
            .collect::<io::Result<_>>()?;
        Ok(ExplainOutcome {
            fact: response
                .get("fact")
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| malformed("explain"))?,
            chain_len: rendered.len(),
            rendered,
            replay_verified: response
                .get("replay_verified")
                .and_then(Value::as_bool)
                .ok_or_else(|| malformed("explain"))?,
            provenance_facts: response
                .get("provenance_facts")
                .and_then(Value::as_u64)
                .ok_or_else(|| malformed("explain"))?,
        })
    }

    /// Server-side counters (uptime, request counts, cache and persist
    /// traffic).
    pub fn stats(&mut self) -> io::Result<Value> {
        self.request(&Value::Object(request("stats")))
    }

    /// The daemon's Prometheus-style text exposition (the same counters
    /// as [`Client::stats`], formatted for scraping).
    pub fn metrics(&mut self) -> io::Result<String> {
        let response = self.request(&Value::Object(request("metrics")))?;
        response
            .get("metrics_text")
            .and_then(Value::as_str)
            .map(String::from)
            .ok_or_else(|| malformed("metrics"))
    }

    /// Asks the daemon to shut down (it finishes open connections first).
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request(&Value::Object(request("shutdown")))
            .map(|_| ())
    }
}
