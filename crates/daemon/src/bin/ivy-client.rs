//! `ivy-client` — one-shot driver for a running `ivy-daemon`.
//!
//! ```text
//! ivy-client <socket-path> analyze <file.kc>
//! ivy-client <socket-path> diagnostics <file.kc>
//! ivy-client <socket-path> notify-edit <file.kc>
//! ivy-client <socket-path> explain <fn> <lvalue> [target]
//! ivy-client <socket-path> stats
//! ivy-client <socket-path> metrics
//! ivy-client <socket-path> shutdown
//! ```
//!
//! `analyze`/`diagnostics` print the stable diagnostics JSON to stdout
//! (what a batch run would have produced, byte-identically); `explain`
//! prints the derivation chain behind a resident points-to fact or
//! indirect-call resolution (needs a daemon started with `--provenance`
//! and a prior `analyze`); `stats` prints the server counters; `metrics`
//! prints the Prometheus-style text exposition.
//!
//! `--trace-out <path>` (anywhere on the command line) records spans for
//! the client side of the session — connect and each request round-trip —
//! and writes them as Chrome trace-event JSON on exit, ready for
//! about://tracing or Perfetto. `IVY_TRACE=1` enables recording without
//! choosing a file (use `ivy_telemetry::write_chrome_trace` downstream).

use ivy_daemon::Client;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ivy-client [--trace-out <trace.json>] <socket> <analyze|diagnostics|notify-edit> <file.kc>\n       \
         ivy-client [--trace-out <trace.json>] <socket> explain <fn> <lvalue> [target]\n       \
         ivy-client [--trace-out <trace.json>] <socket> <stats|metrics|shutdown>"
    );
    ExitCode::FAILURE
}

fn run(args: &[String]) -> Result<(), String> {
    let (Some(socket), Some(cmd)) = (args.first(), args.get(1)) else {
        return Err("missing arguments".into());
    };
    let _cmd_span = ivy_telemetry::span("client/command", cmd.clone());
    let mut client =
        ivy_telemetry::time("client/connect", socket.clone(), || Client::connect(socket))
            .map_err(|e| format!("connect {socket}: {e}"))?;
    let source_arg = || -> Result<String, String> {
        let path = args.get(2).ok_or("missing <file.kc> argument")?;
        std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))
    };
    match cmd.as_str() {
        "analyze" => {
            let source = source_arg()?;
            let outcome =
                ivy_telemetry::time("client/request", "analyze", || client.analyze(&source))
                    .map_err(|e| e.to_string())?;
            eprintln!(
                "program {} — {} diagnostics, cache {}/{} hits/misses, persist {} hits",
                outcome.program_hash,
                outcome.diagnostic_count,
                outcome.stats.cache_hits,
                outcome.stats.cache_misses,
                outcome.stats.persist_hits,
            );
            println!("{}", outcome.diagnostics_json);
        }
        "diagnostics" => {
            let source = source_arg()?;
            println!(
                "{}",
                ivy_telemetry::time("client/request", "diagnostics", || {
                    client.diagnostics(&source)
                })
                .map_err(|e| e.to_string())?
            );
        }
        "notify-edit" => {
            let source = source_arg()?;
            let outcome = ivy_telemetry::time("client/request", "notify_edit", || {
                client.notify_edit(&source)
            })
            .map_err(|e| e.to_string())?;
            let inv = &outcome.invalidation;
            println!(
                "edited [{}] -> {} invalidated, {} retained, {} revalidated (env_changed={})",
                inv.changed_functions.join(", "),
                inv.invalidated,
                inv.retained,
                inv.revalidated,
                inv.env_changed,
            );
        }
        "explain" => {
            let (Some(func), Some(lvalue)) = (args.get(2), args.get(3)) else {
                return Err("explain needs <fn> and <lvalue> arguments".into());
            };
            let target = args.get(4).map(String::as_str);
            let outcome = ivy_telemetry::time("client/request", "explain", || {
                client.explain(func, lvalue, target)
            })
            .map_err(|e| e.to_string())?;
            eprintln!(
                "{} — {} link(s), replay_verified={}, {} recorded fact(s)",
                outcome.fact, outcome.chain_len, outcome.replay_verified, outcome.provenance_facts,
            );
            for line in &outcome.rendered {
                println!("{line}");
            }
        }
        "stats" => {
            let stats = ivy_telemetry::time("client/request", "stats", || client.stats())
                .map_err(|e| e.to_string())?;
            println!(
                "{}",
                ivy_engine::json::to_string_pretty(&stats).map_err(|e| format!("{e:?}"))?
            );
        }
        "metrics" => {
            let text = ivy_telemetry::time("client/request", "metrics", || client.metrics())
                .map_err(|e| e.to_string())?;
            print!("{text}");
        }
        "shutdown" => {
            ivy_telemetry::time("client/request", "shutdown", || client.shutdown())
                .map_err(|e| e.to_string())?;
        }
        _ => return Err(format!("unknown command {cmd:?}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    // Peel `--trace-out <path>` off wherever it appears; the remaining
    // positional arguments keep their documented order.
    let mut trace_out: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        if arg == "--trace-out" {
            let Some(path) = raw.next() else {
                eprintln!("ivy-client: --trace-out needs a path");
                return usage();
            };
            trace_out = Some(path);
        } else {
            args.push(arg);
        }
    }
    if trace_out.is_some() {
        ivy_telemetry::enable_spans();
    }
    let outcome = run(&args);
    if let Some(path) = &trace_out {
        if let Err(e) = ivy_telemetry::write_chrome_trace(std::path::Path::new(path)) {
            eprintln!("ivy-client: trace export to {path} failed: {e}");
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ivy-client: {message}");
            usage()
        }
    }
}
