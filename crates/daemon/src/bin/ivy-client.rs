//! `ivy-client` — one-shot driver for a running `ivy-daemon`.
//!
//! ```text
//! ivy-client <socket-path> analyze <file.kc>
//! ivy-client <socket-path> diagnostics <file.kc>
//! ivy-client <socket-path> notify-edit <file.kc>
//! ivy-client <socket-path> stats
//! ivy-client <socket-path> shutdown
//! ```
//!
//! `analyze`/`diagnostics` print the stable diagnostics JSON to stdout
//! (what a batch run would have produced, byte-identically); `stats`
//! prints the server counters.

use ivy_daemon::Client;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ivy-client <socket> <analyze|diagnostics|notify-edit> <file.kc>\n       \
         ivy-client <socket> <stats|shutdown>"
    );
    ExitCode::FAILURE
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(socket), Some(cmd)) = (args.first(), args.get(1)) else {
        return Err("missing arguments".into());
    };
    let mut client = Client::connect(socket).map_err(|e| format!("connect {socket}: {e}"))?;
    let source_arg = || -> Result<String, String> {
        let path = args.get(2).ok_or("missing <file.kc> argument")?;
        std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))
    };
    match cmd.as_str() {
        "analyze" => {
            let outcome = client.analyze(&source_arg()?).map_err(|e| e.to_string())?;
            eprintln!(
                "program {} — {} diagnostics, cache {}/{} hits/misses, persist {} hits",
                outcome.program_hash,
                outcome.diagnostic_count,
                outcome.stats.cache_hits,
                outcome.stats.cache_misses,
                outcome.stats.persist_hits,
            );
            println!("{}", outcome.diagnostics_json);
        }
        "diagnostics" => {
            println!(
                "{}",
                client
                    .diagnostics(&source_arg()?)
                    .map_err(|e| e.to_string())?
            );
        }
        "notify-edit" => {
            let outcome = client
                .notify_edit(&source_arg()?)
                .map_err(|e| e.to_string())?;
            let inv = &outcome.invalidation;
            println!(
                "edited [{}] -> {} invalidated, {} retained, {} revalidated (env_changed={})",
                inv.changed_functions.join(", "),
                inv.invalidated,
                inv.retained,
                inv.revalidated,
                inv.env_changed,
            );
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!(
                "{}",
                ivy_engine::json::to_string_pretty(&stats).map_err(|e| format!("{e:?}"))?
            );
        }
        "shutdown" => client.shutdown().map_err(|e| e.to_string())?,
        _ => return Err(format!("unknown command {cmd:?}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ivy-client: {message}");
            usage()
        }
    }
}
