//! `ivy-daemon` — serve the resident analysis engine on a Unix socket.
//!
//! ```text
//! ivy-daemon <socket-path> [--cache-dir DIR] [--threads N] [--provenance]
//! ```
//!
//! Blocks until a client sends `shutdown`. Defaults: no persist directory
//! (memory-only), one engine worker per hardware thread, provenance off
//! (`--provenance` records points-to derivations so the `explain` verb
//! can answer; `IVY_PROVENANCE=1` in the environment does the same).

use ivy_daemon::{Daemon, DaemonConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: ivy-daemon <socket-path> [--cache-dir DIR] [--threads N] [--provenance]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(socket) = args.first() else {
        return usage();
    };
    let mut config = DaemonConfig::new(socket);
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        // `--provenance` takes no value, so match it before the flags
        // that consume the next argument.
        if flag == "--provenance" {
            config = config.with_provenance(true);
            continue;
        }
        match (flag.as_str(), rest.next()) {
            ("--cache-dir", Some(dir)) => config = config.with_cache_dir(dir),
            ("--threads", Some(n)) => match n.parse() {
                Ok(threads) => config = config.with_threads(threads),
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }
    // Spawn (which binds synchronously) before announcing, so the banner
    // never claims a socket the bind then fails to take.
    match Daemon::spawn(config) {
        Ok(handle) => {
            eprintln!("ivy-daemon: listening on {}", handle.socket().display());
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ivy-daemon: {e}");
            ExitCode::FAILURE
        }
    }
}
