//! The daemon wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one JSON value encoded as
//! UTF-8, preceded by its byte length as a little-endian `u32`:
//!
//! ```text
//! [len: u32 LE][payload: len bytes of JSON]
//! ```
//!
//! Requests are objects with a `"cmd"` field (`analyze`, `diagnostics`,
//! `notify_edit`, `explain`, `stats`, `metrics`, `shutdown`); responses carry `"ok": true` plus
//! command-specific fields, or `"ok": false` with an `"error"` string. A
//! client may issue any number of requests over one connection; the server
//! answers them in order and treats a clean close as the end of the
//! session.
//!
//! Request/response examples:
//!
//! ```text
//! -> {"cmd":"analyze","source":"fn f() { } ..."}
//! <- {"ok":true,"program_hash":"0f3a…","diagnostic_count":12,
//!     "diagnostics_json":"[ ... ]","stats":{"functions":41,...}}
//!
//! -> {"cmd":"notify_edit","source":"<full edited program source>"}
//! <- {"ok":true,"program_hash":"77b1…","invalidation":{
//!     "changed_functions":["watchdog_tick"],"env_changed":false,
//!     "seeds":1,"invalidated":9,"retained":210,"revalidated":64}}
//!
//! -> {"cmd":"explain","fn":"f","lvalue":"p","target":"global x"}
//! <- {"ok":true,"fact":"`f::p` may point to `global x`","replay_verified":true,
//!     "provenance_facts":41,"chain":[{"fact":"f::p may point to global x",
//!     "rule":"addr-of"},...],"rendered":["f::p may point to global x  [addr-of seed]",...]}
//!
//! -> {"cmd":"metrics"}
//! <- {"ok":true,"metrics_text":"# TYPE ivy_daemon_requests_served_total counter\n..."}
//! ```
//!
//! `metrics` returns a Prometheus-style text exposition (request counts
//! per verb, engine cache hit rates, points-to batch reuse, persist
//! traffic, plus every in-process telemetry counter); `stats` returns the
//! same ground truth as structured JSON.

use ivy_engine::InvalidationStats;
use serde_json::{Map, Value};
use std::io::{self, Read, Write};

/// Version of the framing + message vocabulary; servers report it in
/// `stats` responses so drivers can detect skew.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload — a multi-megabyte kernel source
/// fits comfortably; anything larger is a corrupt or hostile length
/// prefix, not a request.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Writes one frame.
pub fn write_frame(writer: &mut impl Write, message: &Value) -> io::Result<()> {
    let text = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e:?}")))?;
    let bytes = text.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Reads one frame. `Ok(None)` is a clean end of session (the peer closed
/// between frames); a close *inside* a frame is an error.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Value>> {
    let mut len = [0u8; 4];
    match reader.read(&mut len)? {
        0 => return Ok(None),
        4 => {}
        n => reader.read_exact(&mut len[n..])?,
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    let value = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame JSON: {e:?}")))?;
    Ok(Some(value))
}

/// Builds a request object.
pub fn request(cmd: &str) -> Map {
    let mut m = Map::new();
    m.insert("cmd".into(), Value::from(cmd));
    m
}

/// Builds the uniform error response.
pub fn error_response(message: &str) -> Value {
    let mut m = Map::new();
    m.insert("ok".into(), Value::from(false));
    m.insert("error".into(), Value::from(message));
    Value::Object(m)
}

/// True if a response reports success.
pub fn response_ok(response: &Value) -> bool {
    response.get("ok").and_then(Value::as_bool) == Some(true)
}

/// Extracts a response's error message (when `ok` is false).
pub fn response_error(response: &Value) -> String {
    response
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or("malformed response")
        .to_string()
}

/// Encodes [`InvalidationStats`] as the `invalidation` response object.
pub fn invalidation_to_value(stats: &InvalidationStats) -> Value {
    let mut m = Map::new();
    m.insert(
        "changed_functions".into(),
        Value::Array(
            stats
                .changed_functions
                .iter()
                .map(|f| Value::from(f.as_str()))
                .collect(),
        ),
    );
    m.insert("env_changed".into(), Value::from(stats.env_changed));
    m.insert("seeds".into(), Value::from(stats.seeds));
    m.insert("invalidated".into(), Value::from(stats.invalidated));
    m.insert("retained".into(), Value::from(stats.retained));
    m.insert("revalidated".into(), Value::from(stats.revalidated));
    Value::Object(m)
}

/// Decodes the `invalidation` response object.
pub fn invalidation_from_value(v: &Value) -> Option<InvalidationStats> {
    let size = |key: &str| v.get(key).and_then(Value::as_u64).map(|n| n as usize);
    Some(InvalidationStats {
        changed_functions: v
            .get("changed_functions")?
            .as_array()?
            .iter()
            .map(|f| f.as_str().map(String::from))
            .collect::<Option<_>>()?,
        env_changed: v.get("env_changed")?.as_bool()?,
        seeds: size("seeds")?,
        invalidated: size("invalidated")?,
        retained: size("retained")?,
        revalidated: size("revalidated")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut req = request("analyze");
        req.insert("source".into(), Value::from("fn f() { }"));
        let msg = Value::Object(req);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &msg).unwrap();
        let mut reader = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), msg);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), msg);
        // Clean EOF between frames.
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn oversized_and_torn_frames_are_errors_not_hangs() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(read_frame(&mut io::Cursor::new(oversized)).is_err());

        let mut torn = Vec::new();
        write_frame(&mut torn, &Value::from("hello")).unwrap();
        torn.truncate(torn.len() - 2);
        assert!(read_frame(&mut io::Cursor::new(torn)).is_err());
    }

    #[test]
    fn invalidation_stats_roundtrip() {
        let stats = InvalidationStats {
            changed_functions: vec!["watchdog_tick".into()],
            env_changed: false,
            seeds: 1,
            invalidated: 9,
            retained: 210,
            revalidated: 64,
        };
        assert_eq!(
            invalidation_from_value(&invalidation_to_value(&stats)).unwrap(),
            stats
        );
        assert!(invalidation_from_value(&Value::from("nope")).is_none());
    }
}
