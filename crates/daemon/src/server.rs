//! The resident analysis server.
//!
//! A [`Daemon`] binds a Unix-domain socket and serves the framed-JSON
//! protocol from one shared [`Engine`] + persist layer: every connection
//! gets its own thread, but all of them hit the same diagnostic cache,
//! context store, points-to constraint cache, and persist shards — so the
//! first client pays the cold solve and everyone after (and every repeat
//! request) is served from resident state. `notify_edit` keeps that state
//! alive *across* program states: the recorded query dependency edges
//! invalidate only the edited functions' reachable cone, and the rest of
//! the memoized artifacts carry over (see
//! [`Engine::apply_edit`]).

use crate::protocol::{
    error_response, invalidation_to_value, read_frame, response_ok, write_frame, PROTOCOL_VERSION,
};
use ivy_analysis::pointsto::{verify_derivations, Loc};
use ivy_blockstop::BlockStopChecker;
use ivy_ccount::CCountChecker;
use ivy_cmir::parser::parse_program;
use ivy_deputy::plugin::DeputyChecker;
use ivy_engine::{AnalysisCtx, Engine, EngineStats, PersistLayer, Report};
use serde_json::{Map, Value};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Socket path to bind (a stale file at this path is replaced).
    pub socket: PathBuf,
    /// Persist directory shared with batch runs and other workers; `None`
    /// runs memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Engine worker threads (0 = one per hardware thread).
    pub threads: usize,
    /// Record points-to derivations so the `explain` verb can answer.
    /// Equivalent to starting the process with `IVY_PROVENANCE=1`; the
    /// flag only ever widens the environment-derived solve options.
    pub provenance: bool,
    /// Deputy configuration for the served fleet. The default keeps
    /// daemon answers byte-comparable to batch runs; sessions that want
    /// the indirect-annotation drift check opt in here.
    pub deputy: ivy_deputy::DeputyConfig,
}

impl DaemonConfig {
    /// A daemon on `socket` with no persistence and default parallelism.
    pub fn new(socket: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            cache_dir: None,
            threads: 0,
            provenance: false,
            deputy: ivy_deputy::DeputyConfig::default(),
        }
    }

    /// Attaches a persist directory (builder style).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> DaemonConfig {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the engine thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> DaemonConfig {
        self.threads = threads;
        self
    }

    /// Enables derivation recording for the `explain` verb (builder style).
    pub fn with_provenance(mut self, on: bool) -> DaemonConfig {
        self.provenance = on;
        self
    }

    /// Serves the fleet with a non-default Deputy configuration (builder
    /// style), e.g. with `check_indirect_annotations` on.
    pub fn with_deputy(mut self, deputy: ivy_deputy::DeputyConfig) -> DaemonConfig {
        self.deputy = deputy;
        self
    }
}

/// The checker fleet — Deputy (at the given configuration), CCount, and
/// BlockStop. The *single* definition every serving path builds from:
/// the daemon ([`fleet_engine`]), batch mode
/// (`ivy_core::experiments::default_engine`), and the pipeline's
/// `recheck` fallback all call this, so their answers cannot drift.
pub fn fleet_checkers(deputy: ivy_deputy::DeputyConfig) -> Vec<Arc<dyn ivy_engine::Checker>> {
    vec![
        Arc::new(DeputyChecker::with_config(deputy)),
        Arc::new(CCountChecker::new()),
        Arc::new(BlockStopChecker::new()),
    ]
}

/// Builds the engine a daemon serves: the default checker fleet
/// ([`fleet_checkers`] at the default Deputy configuration) — the same
/// fleet batch mode runs, which is what makes daemon answers
/// byte-comparable to batch reports.
pub fn fleet_engine(threads: usize, persist: Option<Arc<PersistLayer>>) -> Engine {
    fleet_engine_with(threads, persist, ivy_deputy::DeputyConfig::default())
}

/// [`fleet_engine`] with an explicit Deputy configuration (the daemon
/// passes [`DaemonConfig::deputy`] through here).
pub fn fleet_engine_with(
    threads: usize,
    persist: Option<Arc<PersistLayer>>,
    deputy: ivy_deputy::DeputyConfig,
) -> Engine {
    let mut engine = Engine::new().with_threads(threads);
    for checker in fleet_checkers(deputy) {
        engine = engine.with_checker(checker);
    }
    match persist {
        Some(layer) => engine.with_persist(layer),
        None => engine,
    }
}

/// Requests at or above this duration land in the slow-request ring.
const SLOW_REQUEST_MICROS: u64 = 10_000;

/// Capacity of the slow-request ring: old entries fall off the front, so a
/// long-lived daemon holds the most recent slow requests, not the first.
const SLOW_RING_CAP: usize = 64;

/// One entry of the slow-request ring.
struct SlowRequest {
    verb: String,
    micros: u64,
    /// Milliseconds since the daemon started, so entries order themselves
    /// without a wall clock.
    at_ms: u64,
}

/// A bounded ring of the most recent slow requests: pushing at capacity
/// evicts the *oldest* entry, so a long-lived daemon always holds the
/// latest [`SlowRing::cap`] slow requests, never the first ones it saw.
struct SlowRing {
    entries: std::collections::VecDeque<SlowRequest>,
    cap: usize,
}

impl SlowRing {
    fn new(cap: usize) -> SlowRing {
        SlowRing {
            entries: std::collections::VecDeque::with_capacity(cap),
            cap,
        }
    }

    fn push(&mut self, entry: SlowRequest) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    fn iter(&self) -> impl Iterator<Item = &SlowRequest> {
        self.entries.iter()
    }
}

/// Every verb the daemon meters, plus the `unknown` catch-all. The order
/// is the index order of [`VerbMetrics`] slots.
const VERBS: [&str; 8] = [
    "analyze",
    "diagnostics",
    "notify_edit",
    "explain",
    "stats",
    "metrics",
    "shutdown",
    "unknown",
];

/// Fixed log-scale latency bucket upper bounds, in microseconds. Fixed
/// bounds (rather than adaptive ones) keep the exposition stable across
/// snapshots and daemons, so dashboards can aggregate them.
const LATENCY_BUCKETS_MICROS: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// One verb's latency histogram: a non-cumulative count per bucket of
/// [`LATENCY_BUCKETS_MICROS`] (observations above the last bound land only
/// in `count`), plus a running sum for the mean.
struct LatencyHistogram {
    buckets: [AtomicU64; 12],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn observe(&self, micros: u64) {
        if let Some(slot) = LATENCY_BUCKETS_MICROS.iter().position(|&le| micros <= le) {
            self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as *cumulative* bucket counts (the Prometheus `le`
    /// convention) plus sum and count. The cumulative array is monotone
    /// non-decreasing and each entry is at most `count` by construction.
    fn snapshot(&self) -> ([u64; 12], u64, u64) {
        let mut cumulative = [0u64; 12];
        let mut running = 0u64;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            running += bucket.load(Ordering::Relaxed);
            cumulative[slot] = running;
        }
        (
            cumulative,
            self.sum.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
        )
    }

    /// The q-quantile estimate: the upper bound of the first bucket whose
    /// cumulative count reaches `ceil(q * count)`. Observations past the
    /// last bound report the last bound (the histogram cannot resolve
    /// further); an empty histogram reports 0.
    fn quantile(cumulative: &[u64; 12], count: u64, q: f64) -> u64 {
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).max(1);
        for (slot, &cum) in cumulative.iter().enumerate() {
            if cum >= rank {
                return LATENCY_BUCKETS_MICROS[slot];
            }
        }
        LATENCY_BUCKETS_MICROS[LATENCY_BUCKETS_MICROS.len() - 1]
    }
}

/// Per-verb request counters and latency histograms, surfaced in `stats`
/// and `metrics` responses.
#[derive(Default)]
struct VerbMetrics {
    counts: [AtomicU64; 8],
    latency: [LatencyHistogram; 8],
}

impl VerbMetrics {
    fn index(verb: &str) -> usize {
        VERBS
            .iter()
            .position(|&v| v == verb)
            .unwrap_or(VERBS.len() - 1)
    }

    fn bump(&self, verb: &str) {
        self.counts[Self::index(verb)].fetch_add(1, Ordering::Relaxed);
    }

    fn observe(&self, verb: &str, micros: u64) {
        self.latency[Self::index(verb)].observe(micros);
    }

    fn snapshot(&self) -> [(&'static str, u64); 8] {
        std::array::from_fn(|slot| (VERBS[slot], self.counts[slot].load(Ordering::Relaxed)))
    }
}

/// Shared server state: the engine, the resident context the last
/// `analyze` left behind (the base `notify_edit` diffs against), and
/// request counters.
struct State {
    engine: Engine,
    persist: Option<Arc<PersistLayer>>,
    resident: Mutex<Option<Arc<AnalysisCtx>>>,
    /// Serializes `notify_edit` against in-flight analyzes. `apply_edit`
    /// snapshots the resident db's dependency edges and memo table; a
    /// compute racing that snapshot could publish a memo entry whose
    /// edges were not yet recorded, and the entry would be carried into
    /// the edited db as clean with a pre-edit value. Analyzes take the
    /// shared side (concurrent clients still run in parallel); an edit
    /// takes it exclusively and waits for them to drain.
    edit_gate: RwLock<()>,
    /// Clones of every open client stream (keyed by fd), so shutdown can
    /// unblock connections idling in a read instead of waiting on them
    /// forever.
    connections: Mutex<std::collections::HashMap<i32, UnixStream>>,
    started: Instant,
    requests: AtomicU64,
    analyzes: AtomicU64,
    edits: AtomicU64,
    verbs: VerbMetrics,
    /// Engine stats of the most recent `analyze`, so the `stats` verb can
    /// report provenance volume without re-running anything.
    last_stats: Mutex<Option<EngineStats>>,
    /// Ring buffer of the most recent requests that took at least
    /// [`SLOW_REQUEST_MICROS`]; surfaced by the `stats` verb.
    slow: Mutex<SlowRing>,
    shutdown: AtomicBool,
    /// Exclusive lock on the sidecar `<socket>.lock` file, held until the
    /// accept loop has removed the socket (see [`Daemon::bind`]); the OS
    /// releases it when the file handle drops.
    _socket_lock: std::fs::File,
}

impl State {
    /// Registers a connection in the shutdown registry; returns false
    /// (and the caller must drop the connection unserved) if the
    /// registry clone cannot be made — a connection served while
    /// invisible to [`State::close_connections`] would hang shutdown's
    /// join on its blocking read.
    fn register_connection(&self, stream: &UnixStream) -> bool {
        use std::os::fd::AsRawFd;
        let Ok(clone) = stream.try_clone() else {
            return false;
        };
        self.connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(stream.as_raw_fd(), clone);
        // Close the race with a concurrent shutdown: if the registry was
        // drained before this insert, nobody will close this stream for
        // us — the mutex ordering guarantees the flag (set before the
        // drain) is visible here, so self-close instead of blocking in a
        // read forever and hanging the accept loop's join.
        if self.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        true
    }

    fn deregister_connection(&self, stream: &UnixStream) {
        use std::os::fd::AsRawFd;
        self.connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&stream.as_raw_fd());
    }

    /// Unblocks every open connection (idle clients sit in a blocking
    /// read; a plain join would wait on them forever). Only the *read*
    /// half is shut down: a connection mid-compute still delivers its
    /// in-flight response over the intact write half, then sees EOF on
    /// its next read and exits cleanly.
    fn close_connections(&self) {
        let connections = std::mem::take(
            &mut *self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for stream in connections.into_values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
    fn analyze_source(&self, source: &str) -> Result<(Arc<AnalysisCtx>, Report, bool), String> {
        let program = parse_program(source).map_err(|e| format!("parse error: {e}"))?;
        let _gate = self
            .edit_gate
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let (ctx, reused) = self.engine.context_for(&program);
        let report = self.engine.analyze_with_ctx(&ctx, reused);
        *self.resident.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&ctx));
        *self
            .last_stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(report.stats.clone());
        Ok((ctx, report, reused))
    }

    /// Renders the Prometheus-style text exposition served by the
    /// `metrics` verb: daemon request counters, engine cache traffic,
    /// points-to batch reuse, persist-layer I/O, and — appended last —
    /// every in-process [`ivy_telemetry`] counter series.
    fn metrics_text(&self) -> String {
        let mut prom = ivy_telemetry::PromText::new();
        prom.gauge(
            "ivy_daemon_uptime_seconds",
            None,
            self.started.elapsed().as_secs_f64(),
        );
        prom.counter(
            "ivy_daemon_requests_served_total",
            None,
            self.requests.load(Ordering::Relaxed),
        );
        for (verb, count) in self.verbs.snapshot() {
            prom.counter(
                "ivy_daemon_verb_requests_total",
                Some(("verb", verb)),
                count,
            );
        }
        // Per-verb latency: the full histogram for dashboards, then
        // p50/p95/p99 summary gauges so a bare `curl | grep p9` answers
        // "is the daemon slow" without a Prometheus server. Verbs never
        // requested are skipped — an all-zero histogram is noise.
        for (slot, &verb) in VERBS.iter().enumerate() {
            let (cumulative, sum, count) = self.verbs.latency[slot].snapshot();
            if count == 0 {
                continue;
            }
            prom.histogram(
                "ivy_daemon_request_duration_micros",
                Some(("verb", verb)),
                &LATENCY_BUCKETS_MICROS,
                &cumulative,
                sum,
                count,
            );
            for (name, q) in [
                ("ivy_daemon_request_p50_micros", 0.50),
                ("ivy_daemon_request_p95_micros", 0.95),
                ("ivy_daemon_request_p99_micros", 0.99),
            ] {
                prom.gauge(
                    name,
                    Some(("verb", verb)),
                    LatencyHistogram::quantile(&cumulative, count, q) as f64,
                );
            }
        }
        let cache = self.engine.cache();
        prom.counter("ivy_daemon_cache_hits_total", None, cache.hits());
        prom.counter("ivy_daemon_cache_misses_total", None, cache.misses());
        prom.gauge("ivy_daemon_cached_results", None, cache.len() as f64);
        let store = self.engine.ctx_store();
        prom.counter("ivy_daemon_ctx_hits_total", None, store.hits());
        prom.counter("ivy_daemon_ctx_misses_total", None, store.misses());
        prom.counter("ivy_daemon_ctx_evictions_total", None, store.evictions());
        prom.gauge("ivy_daemon_resident_contexts", None, store.len() as f64);
        let pts = self.engine.pointsto_cache();
        prom.counter("ivy_daemon_pointsto_batch_hits_total", None, pts.hits());
        prom.counter("ivy_daemon_pointsto_batch_misses_total", None, pts.misses());
        prom.counter(
            "ivy_daemon_pointsto_solves_total",
            Some(("mode", "cold")),
            pts.solves_cold(),
        );
        prom.counter(
            "ivy_daemon_pointsto_solves_total",
            Some(("mode", "incremental-repropagate")),
            pts.solves_repropagate(),
        );
        prom.counter(
            "ivy_daemon_pointsto_solves_total",
            Some(("mode", "delta-repair")),
            pts.solves_delta(),
        );
        if let Some(layer) = &self.persist {
            prom.counter("ivy_daemon_persist_hits_total", None, layer.hits());
            prom.counter("ivy_daemon_persist_misses_total", None, layer.misses());
            prom.counter("ivy_daemon_persist_writes_total", None, layer.writes());
            prom.counter("ivy_daemon_persist_pruned_total", None, layer.pruned());
        }
        let mut text = prom.finish();
        text.push_str(&ivy_telemetry::prometheus_text());
        text
    }

    /// Answers an `explain` request against the resident context: resolves
    /// `lvalue` in `func` to either an indirect-call expression or a
    /// pointer slot, picks the claimed target (the request's, or the first
    /// in the static answer), and returns the recorded derivation chain —
    /// replay-verified against the program's constraints before it ships.
    fn explain(&self, ctx: &AnalysisCtx, func: &str, lvalue: &str, target: Option<&str>) -> Value {
        let sensitivity = self.engine.required_sensitivity();
        let pts = ctx.pointsto(sensitivity);
        if !pts.has_provenance() {
            return error_response(
                "the resident solve recorded no derivations; start the daemon with --provenance \
                 (or IVY_PROVENANCE=1) and re-run analyze",
            );
        }
        // An lvalue that is an indirect callee expression in `func` is
        // explained as a call resolution; otherwise it names a pointer
        // slot (a global if the program declares one, else a local).
        let (fact, chain) = if let Some(targets) = pts.indirect_targets_for(func, lvalue) {
            let chosen = match target {
                Some(t) => {
                    if !targets.contains(t) {
                        return error_response(&format!(
                            "the static answer does not resolve `{lvalue}` in `{func}` to \
                             `{t}`; it resolves to: {}",
                            targets.iter().cloned().collect::<Vec<_>>().join(", ")
                        ));
                    }
                    t.to_string()
                }
                None => match targets.iter().next() {
                    Some(first) => first.clone(),
                    None => {
                        return error_response(&format!(
                            "the static answer resolves `{lvalue}` in `{func}` to no targets"
                        ))
                    }
                },
            };
            let fact = format!("indirect call `{lvalue}` in `{func}` may reach `{chosen}`");
            match pts.why_indirect(&ctx.program, func, lvalue, &chosen) {
                Some(chain) => (fact, chain),
                None => {
                    return error_response(&format!(
                        "no recorded derivation for {fact} (provenance store incomplete?)"
                    ))
                }
            }
        } else {
            let loc = if ctx.program.global(lvalue).is_some() {
                Loc::Global(lvalue.to_string())
            } else {
                Loc::Local {
                    func: func.to_string(),
                    var: lvalue.to_string(),
                }
            };
            let set = pts.points_to(&loc);
            let chosen = match target {
                Some(t) => match set.iter().find(|p| p.to_string() == t) {
                    Some(p) => p.clone(),
                    None => {
                        return error_response(&format!(
                            "the static answer does not put `{t}` in the points-to set of \
                             `{loc}`; the set is: {{{}}}",
                            set.iter()
                                .map(|p| p.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    }
                },
                None => match set.iter().next() {
                    Some(p) => p.clone(),
                    None => {
                        return error_response(&format!(
                            "the points-to set of `{loc}` is empty: no seed constraint \
                             (address-of or allocation) ever reaches it"
                        ))
                    }
                },
            };
            let fact = format!("`{loc}` may point to `{chosen}`");
            match pts.why(&loc, &chosen) {
                Some(chain) => (fact, chain),
                None => {
                    return error_response(&format!(
                        "no recorded derivation for {fact} (provenance store incomplete?)"
                    ))
                }
            }
        };
        // Replay the whole store against the program before shipping any
        // chain: an `explain` answer is a soundness artifact, and a chain
        // from a corrupt store is worse than an error.
        let replay = verify_derivations(&ctx.program, &pts);
        let replay_verified = match replay {
            Ok(_) => true,
            Err(e) => return error_response(&format!("derivation replay failed: {e}")),
        };
        ivy_telemetry::counter("ivy_daemon_explains_total", 1);
        let links: Vec<Value> = chain
            .iter()
            .map(|link| {
                let mut l = Map::new();
                l.insert(
                    "fact".into(),
                    Value::from(format!("{} may point to {}", link.dst, link.pointee)),
                );
                l.insert("rule".into(), Value::from(link.rule));
                if let Some(src) = &link.src {
                    l.insert("from".into(), Value::from(src.to_string()));
                }
                if let Some((trigger, aux)) = &link.via {
                    l.insert("via".into(), Value::from(format!("{trigger} -> {aux}")));
                }
                Value::Object(l)
            })
            .collect();
        let rendered: Vec<Value> = chain
            .iter()
            .map(|link| Value::from(link.render()))
            .collect();
        let mut m = Map::new();
        m.insert("ok".into(), Value::from(true));
        m.insert("fn".into(), Value::from(func));
        m.insert("lvalue".into(), Value::from(lvalue));
        m.insert("fact".into(), Value::from(fact.as_str()));
        m.insert("replay_verified".into(), Value::from(replay_verified));
        m.insert(
            "provenance_facts".into(),
            Value::from(pts.provenance_facts() as u64),
        );
        m.insert("chain".into(), Value::Array(links));
        m.insert("rendered".into(), Value::Array(rendered));
        Value::Object(m)
    }

    fn handle(&self, request: &Value) -> Value {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let Some(cmd) = request.get("cmd").and_then(Value::as_str) else {
            return error_response("request has no \"cmd\" field");
        };
        self.verbs.bump(cmd);
        ivy_telemetry::counter_labeled("ivy_daemon_requests_total", "verb", cmd, 1);
        let _span = ivy_telemetry::span("daemon/request", cmd.to_string());
        let start = Instant::now();
        let response = self.dispatch(cmd, request);
        let micros = start.elapsed().as_micros() as u64;
        self.verbs.observe(cmd, micros);
        if micros >= SLOW_REQUEST_MICROS {
            self.slow
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(SlowRequest {
                    verb: cmd.to_string(),
                    micros,
                    at_ms: self.started.elapsed().as_millis() as u64,
                });
        }
        response
    }

    fn dispatch(&self, cmd: &str, request: &Value) -> Value {
        match cmd {
            "analyze" | "diagnostics" => {
                let Some(source) = request.get("source").and_then(Value::as_str) else {
                    return error_response("analyze needs a \"source\" field");
                };
                self.analyzes.fetch_add(1, Ordering::Relaxed);
                match self.analyze_source(source) {
                    Err(message) => error_response(&message),
                    Ok((ctx, report, _)) => {
                        let mut m = Map::new();
                        m.insert("ok".into(), Value::from(true));
                        m.insert(
                            "program_hash".into(),
                            Value::from(format!("{:016x}", ctx.program_hash)),
                        );
                        m.insert(
                            "diagnostics_json".into(),
                            Value::from(report.diagnostics_json().as_str()),
                        );
                        if cmd == "analyze" {
                            m.insert(
                                "diagnostic_count".into(),
                                Value::from(report.diagnostics.len()),
                            );
                            m.insert("stats".into(), report.stats.to_value());
                        }
                        Value::Object(m)
                    }
                }
            }
            "notify_edit" => {
                let Some(source) = request.get("source").and_then(Value::as_str) else {
                    return error_response("notify_edit needs a \"source\" field");
                };
                let edited = match parse_program(source) {
                    Ok(p) => p,
                    Err(e) => return error_response(&format!("parse error: {e}")),
                };
                let _gate = self
                    .edit_gate
                    .write()
                    .unwrap_or_else(PoisonError::into_inner);
                let base = self
                    .resident
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                let Some(base) = base else {
                    return error_response("notify_edit before any analyze: nothing is resident");
                };
                self.edits.fetch_add(1, Ordering::Relaxed);
                let (ctx, stats) = self.engine.apply_edit(&base, &edited);
                *self.resident.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(Arc::clone(&ctx));
                let mut m = Map::new();
                m.insert("ok".into(), Value::from(true));
                m.insert(
                    "program_hash".into(),
                    Value::from(format!("{:016x}", ctx.program_hash)),
                );
                m.insert("invalidation".into(), invalidation_to_value(&stats));
                Value::Object(m)
            }
            "stats" => {
                let cache = self.engine.cache();
                let store = self.engine.ctx_store();
                let mut engine_stats = Map::new();
                engine_stats.insert("cache_hits".into(), Value::from(cache.hits()));
                engine_stats.insert("cache_misses".into(), Value::from(cache.misses()));
                engine_stats.insert("cached_results".into(), Value::from(cache.len()));
                engine_stats.insert("resident_contexts".into(), Value::from(store.len()));
                engine_stats.insert("ctx_hits".into(), Value::from(store.hits()));
                engine_stats.insert("ctx_misses".into(), Value::from(store.misses()));
                engine_stats.insert("evictions".into(), Value::from(self.engine.ctx_evictions()));
                let pts = self.engine.pointsto_cache();
                let mut pointsto = Map::new();
                pointsto.insert("batch_hits".into(), Value::from(pts.hits()));
                pointsto.insert("batch_misses".into(), Value::from(pts.misses()));
                pointsto.insert("solves_cold".into(), Value::from(pts.solves_cold()));
                pointsto.insert(
                    "solves_repropagate".into(),
                    Value::from(pts.solves_repropagate()),
                );
                pointsto.insert(
                    "solves_delta_repair".into(),
                    Value::from(pts.solves_delta()),
                );
                engine_stats.insert("pointsto".into(), Value::Object(pointsto));
                // Provenance volume of the last analyze (0 when provenance
                // is off or nothing has been analyzed yet).
                let (prov_facts, prov_bytes) = self
                    .last_stats
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .as_ref()
                    .map_or((0, 0), |s| (s.provenance_facts, s.provenance_bytes));
                engine_stats.insert("provenance_facts".into(), Value::from(prov_facts));
                engine_stats.insert("provenance_bytes".into(), Value::from(prov_bytes));
                let mut m = Map::new();
                m.insert("ok".into(), Value::from(true));
                m.insert("protocol".into(), Value::from(PROTOCOL_VERSION));
                m.insert(
                    "uptime_ms".into(),
                    Value::from(self.started.elapsed().as_millis() as u64),
                );
                m.insert(
                    "requests".into(),
                    Value::from(self.requests.load(Ordering::Relaxed)),
                );
                m.insert(
                    "analyzes".into(),
                    Value::from(self.analyzes.load(Ordering::Relaxed)),
                );
                m.insert(
                    "edits".into(),
                    Value::from(self.edits.load(Ordering::Relaxed)),
                );
                let mut verbs = Map::new();
                for (verb, count) in self.verbs.snapshot() {
                    verbs.insert(verb.into(), Value::from(count));
                }
                m.insert("verbs".into(), Value::Object(verbs));
                let slow: Vec<Value> = self
                    .slow
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .iter()
                    .map(|r| {
                        let mut e = Map::new();
                        e.insert("verb".into(), Value::from(r.verb.as_str()));
                        e.insert("micros".into(), Value::from(r.micros));
                        e.insert("at_ms".into(), Value::from(r.at_ms));
                        Value::Object(e)
                    })
                    .collect();
                m.insert("slow_requests".into(), Value::Array(slow));
                m.insert("engine".into(), Value::Object(engine_stats));
                if let Some(layer) = &self.persist {
                    let mut persist = Map::new();
                    persist.insert("hits".into(), Value::from(layer.hits()));
                    persist.insert("misses".into(), Value::from(layer.misses()));
                    persist.insert("writes".into(), Value::from(layer.writes()));
                    persist.insert("pruned".into(), Value::from(layer.pruned()));
                    persist.insert("writer".into(), Value::from(layer.writer_id()));
                    m.insert("persist".into(), Value::Object(persist));
                }
                Value::Object(m)
            }
            "explain" => {
                let Some(func) = request.get("fn").and_then(Value::as_str) else {
                    return error_response("explain needs a \"fn\" field");
                };
                let Some(lvalue) = request.get("lvalue").and_then(Value::as_str) else {
                    return error_response("explain needs an \"lvalue\" field");
                };
                let target = request.get("target").and_then(Value::as_str);
                // Explain reads the resident context like an analyze does,
                // so it takes the shared side of the edit gate.
                let _gate = self
                    .edit_gate
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                let resident = self
                    .resident
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                let Some(ctx) = resident else {
                    return error_response("explain before any analyze: nothing is resident");
                };
                self.explain(&ctx, func, lvalue, target)
            }
            "metrics" => {
                let mut m = Map::new();
                m.insert("ok".into(), Value::from(true));
                m.insert("metrics_text".into(), Value::from(self.metrics_text()));
                Value::Object(m)
            }
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                let mut m = Map::new();
                m.insert("ok".into(), Value::from(true));
                Value::Object(m)
            }
            other => error_response(&format!("unknown cmd {other:?}")),
        }
    }
}

/// A running daemon (see [`Daemon::spawn`] / [`Daemon::serve`]).
pub struct Daemon;

/// Handle to a daemon spawned in the background; join it after asking the
/// server to shut down (e.g. via [`crate::Client::shutdown`]).
pub struct DaemonHandle {
    socket: PathBuf,
    accept_thread: JoinHandle<()>,
}

impl DaemonHandle {
    /// The socket the daemon is listening on.
    pub fn socket(&self) -> &PathBuf {
        &self.socket
    }

    /// Waits for the accept loop to exit (it exits once a client sent
    /// `shutdown`).
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

impl Daemon {
    fn bind(config: &DaemonConfig) -> io::Result<(UnixListener, Arc<State>)> {
        if let Some(parent) = config.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // Ownership of the socket path is an exclusive OS lock on a
        // sidecar `<socket>.lock` file, held for the daemon's lifetime
        // and released by the kernel on exit, clean or not. A bare
        // probe-then-unlink would be a TOCTOU: two daemons starting
        // concurrently could both observe a dead socket, and the loser's
        // `remove_file` would unlink the path the winner had just bound.
        // The lock also covers the exit-time cleanup in the accept loop,
        // which could otherwise unlink a *newer* daemon's socket when an
        // old daemon shuts down late. The lock file itself is never
        // removed — unlinking it would reopen the race through a second
        // inode.
        let mut lock_path = config.socket.clone().into_os_string();
        lock_path.push(".lock");
        let socket_lock = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(PathBuf::from(lock_path))?;
        if let Err(err) = socket_lock.try_lock() {
            return Err(match err {
                std::fs::TryLockError::WouldBlock => io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!(
                        "another daemon owns (or is starting on) {}",
                        config.socket.display()
                    ),
                ),
                // A lock the filesystem cannot take at all (e.g. ENOLCK)
                // is an I/O problem, not a second daemon — report it as
                // itself so the operator does not chase a phantom.
                std::fs::TryLockError::Error(e) => e,
            });
        }
        // Holding the lock: a live daemon on this path is impossible (it
        // would hold the lock), so any socket file here is leftover from
        // a dead process — but keep the probe as a guard against foreign,
        // non-lock-aware listeners before unlinking.
        if config.socket.exists() {
            if UnixStream::connect(&config.socket).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving {}", config.socket.display()),
                ));
            }
            let _ = std::fs::remove_file(&config.socket);
        }
        let listener = UnixListener::bind(&config.socket)?;
        let persist = match &config.cache_dir {
            Some(dir) => Some(Arc::new(PersistLayer::open(dir)?)),
            None => None,
        };
        // A daemon always meters itself: counters are a handful of sharded
        // atomics with no per-request allocation, and the `metrics` verb is
        // useless without them. Spans stay opt-in (`IVY_TRACE=1`) — a
        // long-lived server must not accumulate span records unasked.
        ivy_telemetry::enable_counters();
        let state = Arc::new(State {
            engine: fleet_engine_with(config.threads, persist.clone(), config.deputy)
                .with_provenance(config.provenance),
            persist,
            resident: Mutex::new(None),
            edit_gate: RwLock::new(()),
            connections: Mutex::new(std::collections::HashMap::new()),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            analyzes: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            verbs: VerbMetrics::default(),
            last_stats: Mutex::new(None),
            slow: Mutex::new(SlowRing::new(SLOW_RING_CAP)),
            shutdown: AtomicBool::new(false),
            _socket_lock: socket_lock,
        });
        Ok((listener, state))
    }

    /// Runs the accept loop until a client sends `shutdown`. Each
    /// connection is served on its own thread; the shared state makes
    /// concurrent answers deterministic and byte-identical.
    fn accept_loop(listener: UnixListener, state: Arc<State>, socket: PathBuf) {
        let mut clients: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Reap finished connections so a long-lived daemon does not
            // accumulate one handle per connection ever served.
            clients.retain(|client| !client.is_finished());
            let Ok(stream) = stream else {
                continue;
            };
            let state = Arc::clone(&state);
            let socket = socket.clone();
            clients.push(thread::spawn(move || {
                serve_connection(stream, &state, &socket);
            }));
        }
        for client in clients {
            let _ = client.join();
        }
        let _ = std::fs::remove_file(&socket);
    }

    /// Starts a daemon in a background thread of this process and returns
    /// immediately. The "zero-deploy" mode used by tests, the bench, and
    /// the session example; production use runs [`Daemon::serve`] in a
    /// dedicated process (`ivy-daemon` binary).
    pub fn spawn(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let (listener, state) = Self::bind(&config)?;
        let socket = config.socket.clone();
        let accept_socket = socket.clone();
        let accept_thread =
            thread::spawn(move || Self::accept_loop(listener, state, accept_socket));
        Ok(DaemonHandle {
            socket,
            accept_thread,
        })
    }

    /// Binds and serves on the calling thread until shutdown (the blocking
    /// mode the `ivy-daemon` binary runs).
    pub fn serve(config: DaemonConfig) -> io::Result<()> {
        let (listener, state) = Self::bind(&config)?;
        let socket = config.socket.clone();
        Self::accept_loop(listener, state, socket);
        Ok(())
    }
}

/// Serves one client connection: frames in, frames out, until the peer
/// closes or asks for shutdown.
fn serve_connection(stream: UnixStream, state: &State, socket: &PathBuf) {
    // Under fd pressure the registry clone can fail; shed the connection
    // (the client sees a clean close) rather than serve it invisibly.
    if !state.register_connection(&stream) {
        return;
    }
    let reader = stream.try_clone();
    connection_loop(reader, stream, state, socket);
}

fn connection_loop(
    reader: io::Result<UnixStream>,
    stream: UnixStream,
    state: &State,
    socket: &PathBuf,
) {
    let mut reader = match reader {
        Ok(s) => s,
        Err(_) => {
            state.deregister_connection(&stream);
            return;
        }
    };
    let mut writer = stream;
    let mut shutdown_sent = false;
    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(e) => {
                if !state.shutdown.load(Ordering::SeqCst) {
                    // A torn read during shutdown is our own teardown of
                    // the socket, not a client error worth answering.
                    let _ = write_frame(&mut writer, &error_response(&format!("bad frame: {e}")));
                }
                break;
            }
        };
        let response = state.handle(&request);
        shutdown_sent = state.shutdown.load(Ordering::SeqCst)
            && request.get("cmd").and_then(Value::as_str) == Some("shutdown");
        let _ = write_frame(&mut writer, &response);
        if shutdown_sent && response_ok(&response) {
            break;
        }
    }
    state.deregister_connection(&writer);
    if shutdown_sent {
        // The requester has its answer; now unblock every idle connection
        // and wake the accept loop so it observes the flag and exits.
        state.close_connections();
        let _ = UnixStream::connect(socket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_ring_evicts_oldest_first_at_capacity() {
        let mut ring = SlowRing::new(3);
        for micros in 0..5u64 {
            ring.push(SlowRequest {
                verb: "analyze".into(),
                micros,
                at_ms: micros,
            });
        }
        let held: Vec<u64> = ring.iter().map(|r| r.micros).collect();
        // The first two entries fell off the front; the latest three
        // remain in arrival order.
        assert_eq!(held, vec![2, 3, 4]);
    }

    #[test]
    fn latency_histogram_buckets_are_cumulative_and_monotone() {
        let h = LatencyHistogram::default();
        // One observation per bucket bound, one in-between, one overflow
        // past the last bound.
        for le in LATENCY_BUCKETS_MICROS {
            h.observe(le);
        }
        h.observe(300); // lands in the 500 bucket
        h.observe(2_000_000); // overflow: counted, bucketed nowhere
        let (cumulative, sum, count) = h.snapshot();
        assert_eq!(count, LATENCY_BUCKETS_MICROS.len() as u64 + 2);
        assert_eq!(
            sum,
            LATENCY_BUCKETS_MICROS.iter().sum::<u64>() + 300 + 2_000_000
        );
        for pair in cumulative.windows(2) {
            assert!(pair[0] <= pair[1], "cumulative counts must be monotone");
        }
        // Every cumulative entry is bounded by the total observation count.
        assert!(cumulative.iter().all(|&c| c <= count));
        // The overflow observation is visible as count minus the last
        // cumulative bucket.
        assert_eq!(cumulative[LATENCY_BUCKETS_MICROS.len() - 1], count - 1);
    }

    #[test]
    fn latency_quantiles_report_bucket_upper_bounds() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.observe(80); // <= 100
        }
        h.observe(600_000); // <= 1_000_000
        let (cumulative, _, count) = h.snapshot();
        assert_eq!(LatencyHistogram::quantile(&cumulative, count, 0.50), 100);
        assert_eq!(LatencyHistogram::quantile(&cumulative, count, 0.95), 100);
        assert_eq!(
            LatencyHistogram::quantile(&cumulative, count, 1.0),
            1_000_000
        );
        assert_eq!(LatencyHistogram::quantile(&[0; 12], 0, 0.99), 0);
    }
}
