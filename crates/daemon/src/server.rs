//! The resident analysis server.
//!
//! A [`Daemon`] binds a Unix-domain socket and serves the framed-JSON
//! protocol from one shared [`Engine`] + persist layer: every connection
//! gets its own thread, but all of them hit the same diagnostic cache,
//! context store, points-to constraint cache, and persist shards — so the
//! first client pays the cold solve and everyone after (and every repeat
//! request) is served from resident state. `notify_edit` keeps that state
//! alive *across* program states: the recorded query dependency edges
//! invalidate only the edited functions' reachable cone, and the rest of
//! the memoized artifacts carry over (see
//! [`Engine::apply_edit`]).

use crate::protocol::{
    error_response, invalidation_to_value, read_frame, response_ok, write_frame, PROTOCOL_VERSION,
};
use ivy_blockstop::BlockStopChecker;
use ivy_ccount::CCountChecker;
use ivy_cmir::parser::parse_program;
use ivy_deputy::plugin::DeputyChecker;
use ivy_engine::{AnalysisCtx, Engine, PersistLayer, Report};
use serde_json::{Map, Value};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Socket path to bind (a stale file at this path is replaced).
    pub socket: PathBuf,
    /// Persist directory shared with batch runs and other workers; `None`
    /// runs memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Engine worker threads (0 = one per hardware thread).
    pub threads: usize,
}

impl DaemonConfig {
    /// A daemon on `socket` with no persistence and default parallelism.
    pub fn new(socket: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            cache_dir: None,
            threads: 0,
        }
    }

    /// Attaches a persist directory (builder style).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> DaemonConfig {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the engine thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> DaemonConfig {
        self.threads = threads;
        self
    }
}

/// The checker fleet — Deputy (at the given configuration), CCount, and
/// BlockStop. The *single* definition every serving path builds from:
/// the daemon ([`fleet_engine`]), batch mode
/// (`ivy_core::experiments::default_engine`), and the pipeline's
/// `recheck` fallback all call this, so their answers cannot drift.
pub fn fleet_checkers(deputy: ivy_deputy::DeputyConfig) -> Vec<Arc<dyn ivy_engine::Checker>> {
    vec![
        Arc::new(DeputyChecker::with_config(deputy)),
        Arc::new(CCountChecker::new()),
        Arc::new(BlockStopChecker::new()),
    ]
}

/// Builds the engine a daemon serves: the default checker fleet
/// ([`fleet_checkers`] at the default Deputy configuration) — the same
/// fleet batch mode runs, which is what makes daemon answers
/// byte-comparable to batch reports.
pub fn fleet_engine(threads: usize, persist: Option<Arc<PersistLayer>>) -> Engine {
    let mut engine = Engine::new().with_threads(threads);
    for checker in fleet_checkers(ivy_deputy::DeputyConfig::default()) {
        engine = engine.with_checker(checker);
    }
    match persist {
        Some(layer) => engine.with_persist(layer),
        None => engine,
    }
}

/// Requests at or above this duration land in the slow-request ring.
const SLOW_REQUEST_MICROS: u64 = 10_000;

/// Capacity of the slow-request ring: old entries fall off the front, so a
/// long-lived daemon holds the most recent slow requests, not the first.
const SLOW_RING_CAP: usize = 64;

/// One entry of the slow-request ring.
struct SlowRequest {
    verb: String,
    micros: u64,
    /// Milliseconds since the daemon started, so entries order themselves
    /// without a wall clock.
    at_ms: u64,
}

/// Per-verb request counters, surfaced in `stats` and `metrics` responses.
#[derive(Default)]
struct VerbCounters {
    analyze: AtomicU64,
    diagnostics: AtomicU64,
    notify_edit: AtomicU64,
    stats: AtomicU64,
    metrics: AtomicU64,
    shutdown: AtomicU64,
    unknown: AtomicU64,
}

impl VerbCounters {
    fn slot(&self, verb: &str) -> &AtomicU64 {
        match verb {
            "analyze" => &self.analyze,
            "diagnostics" => &self.diagnostics,
            "notify_edit" => &self.notify_edit,
            "stats" => &self.stats,
            "metrics" => &self.metrics,
            "shutdown" => &self.shutdown,
            _ => &self.unknown,
        }
    }

    fn bump(&self, verb: &str) {
        self.slot(verb).fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> [(&'static str, u64); 7] {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        [
            ("analyze", get(&self.analyze)),
            ("diagnostics", get(&self.diagnostics)),
            ("notify_edit", get(&self.notify_edit)),
            ("stats", get(&self.stats)),
            ("metrics", get(&self.metrics)),
            ("shutdown", get(&self.shutdown)),
            ("unknown", get(&self.unknown)),
        ]
    }
}

/// Shared server state: the engine, the resident context the last
/// `analyze` left behind (the base `notify_edit` diffs against), and
/// request counters.
struct State {
    engine: Engine,
    persist: Option<Arc<PersistLayer>>,
    resident: Mutex<Option<Arc<AnalysisCtx>>>,
    /// Serializes `notify_edit` against in-flight analyzes. `apply_edit`
    /// snapshots the resident db's dependency edges and memo table; a
    /// compute racing that snapshot could publish a memo entry whose
    /// edges were not yet recorded, and the entry would be carried into
    /// the edited db as clean with a pre-edit value. Analyzes take the
    /// shared side (concurrent clients still run in parallel); an edit
    /// takes it exclusively and waits for them to drain.
    edit_gate: RwLock<()>,
    /// Clones of every open client stream (keyed by fd), so shutdown can
    /// unblock connections idling in a read instead of waiting on them
    /// forever.
    connections: Mutex<std::collections::HashMap<i32, UnixStream>>,
    started: Instant,
    requests: AtomicU64,
    analyzes: AtomicU64,
    edits: AtomicU64,
    verbs: VerbCounters,
    /// Ring buffer of the most recent requests that took at least
    /// [`SLOW_REQUEST_MICROS`]; surfaced by the `stats` verb.
    slow: Mutex<std::collections::VecDeque<SlowRequest>>,
    shutdown: AtomicBool,
    /// Exclusive lock on the sidecar `<socket>.lock` file, held until the
    /// accept loop has removed the socket (see [`Daemon::bind`]); the OS
    /// releases it when the file handle drops.
    _socket_lock: std::fs::File,
}

impl State {
    /// Registers a connection in the shutdown registry; returns false
    /// (and the caller must drop the connection unserved) if the
    /// registry clone cannot be made — a connection served while
    /// invisible to [`State::close_connections`] would hang shutdown's
    /// join on its blocking read.
    fn register_connection(&self, stream: &UnixStream) -> bool {
        use std::os::fd::AsRawFd;
        let Ok(clone) = stream.try_clone() else {
            return false;
        };
        self.connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(stream.as_raw_fd(), clone);
        // Close the race with a concurrent shutdown: if the registry was
        // drained before this insert, nobody will close this stream for
        // us — the mutex ordering guarantees the flag (set before the
        // drain) is visible here, so self-close instead of blocking in a
        // read forever and hanging the accept loop's join.
        if self.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        true
    }

    fn deregister_connection(&self, stream: &UnixStream) {
        use std::os::fd::AsRawFd;
        self.connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&stream.as_raw_fd());
    }

    /// Unblocks every open connection (idle clients sit in a blocking
    /// read; a plain join would wait on them forever). Only the *read*
    /// half is shut down: a connection mid-compute still delivers its
    /// in-flight response over the intact write half, then sees EOF on
    /// its next read and exits cleanly.
    fn close_connections(&self) {
        let connections = std::mem::take(
            &mut *self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for stream in connections.into_values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
    fn analyze_source(&self, source: &str) -> Result<(Arc<AnalysisCtx>, Report, bool), String> {
        let program = parse_program(source).map_err(|e| format!("parse error: {e}"))?;
        let _gate = self
            .edit_gate
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let (ctx, reused) = self.engine.context_for(&program);
        let report = self.engine.analyze_with_ctx(&ctx, reused);
        *self.resident.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&ctx));
        Ok((ctx, report, reused))
    }

    /// Renders the Prometheus-style text exposition served by the
    /// `metrics` verb: daemon request counters, engine cache traffic,
    /// points-to batch reuse, persist-layer I/O, and — appended last —
    /// every in-process [`ivy_telemetry`] counter series.
    fn metrics_text(&self) -> String {
        let mut prom = ivy_telemetry::PromText::new();
        prom.gauge(
            "ivy_daemon_uptime_seconds",
            None,
            self.started.elapsed().as_secs_f64(),
        );
        prom.counter(
            "ivy_daemon_requests_served_total",
            None,
            self.requests.load(Ordering::Relaxed),
        );
        for (verb, count) in self.verbs.snapshot() {
            prom.counter(
                "ivy_daemon_verb_requests_total",
                Some(("verb", verb)),
                count,
            );
        }
        let cache = self.engine.cache();
        prom.counter("ivy_daemon_cache_hits_total", None, cache.hits());
        prom.counter("ivy_daemon_cache_misses_total", None, cache.misses());
        prom.gauge("ivy_daemon_cached_results", None, cache.len() as f64);
        let store = self.engine.ctx_store();
        prom.counter("ivy_daemon_ctx_hits_total", None, store.hits());
        prom.counter("ivy_daemon_ctx_misses_total", None, store.misses());
        prom.counter("ivy_daemon_ctx_evictions_total", None, store.evictions());
        prom.gauge("ivy_daemon_resident_contexts", None, store.len() as f64);
        let pts = self.engine.pointsto_cache();
        prom.counter("ivy_daemon_pointsto_batch_hits_total", None, pts.hits());
        prom.counter("ivy_daemon_pointsto_batch_misses_total", None, pts.misses());
        prom.counter(
            "ivy_daemon_pointsto_solves_total",
            Some(("mode", "cold")),
            pts.solves_cold(),
        );
        prom.counter(
            "ivy_daemon_pointsto_solves_total",
            Some(("mode", "incremental-repropagate")),
            pts.solves_repropagate(),
        );
        prom.counter(
            "ivy_daemon_pointsto_solves_total",
            Some(("mode", "delta-repair")),
            pts.solves_delta(),
        );
        if let Some(layer) = &self.persist {
            prom.counter("ivy_daemon_persist_hits_total", None, layer.hits());
            prom.counter("ivy_daemon_persist_misses_total", None, layer.misses());
            prom.counter("ivy_daemon_persist_writes_total", None, layer.writes());
            prom.counter("ivy_daemon_persist_pruned_total", None, layer.pruned());
        }
        let mut text = prom.finish();
        text.push_str(&ivy_telemetry::prometheus_text());
        text
    }

    fn handle(&self, request: &Value) -> Value {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let Some(cmd) = request.get("cmd").and_then(Value::as_str) else {
            return error_response("request has no \"cmd\" field");
        };
        self.verbs.bump(cmd);
        ivy_telemetry::counter_labeled("ivy_daemon_requests_total", "verb", cmd, 1);
        let _span = ivy_telemetry::span("daemon/request", cmd.to_string());
        let start = Instant::now();
        let response = self.dispatch(cmd, request);
        let micros = start.elapsed().as_micros() as u64;
        if micros >= SLOW_REQUEST_MICROS {
            let mut slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
            if slow.len() == SLOW_RING_CAP {
                slow.pop_front();
            }
            slow.push_back(SlowRequest {
                verb: cmd.to_string(),
                micros,
                at_ms: self.started.elapsed().as_millis() as u64,
            });
        }
        response
    }

    fn dispatch(&self, cmd: &str, request: &Value) -> Value {
        match cmd {
            "analyze" | "diagnostics" => {
                let Some(source) = request.get("source").and_then(Value::as_str) else {
                    return error_response("analyze needs a \"source\" field");
                };
                self.analyzes.fetch_add(1, Ordering::Relaxed);
                match self.analyze_source(source) {
                    Err(message) => error_response(&message),
                    Ok((ctx, report, _)) => {
                        let mut m = Map::new();
                        m.insert("ok".into(), Value::from(true));
                        m.insert(
                            "program_hash".into(),
                            Value::from(format!("{:016x}", ctx.program_hash)),
                        );
                        m.insert(
                            "diagnostics_json".into(),
                            Value::from(report.diagnostics_json().as_str()),
                        );
                        if cmd == "analyze" {
                            m.insert(
                                "diagnostic_count".into(),
                                Value::from(report.diagnostics.len()),
                            );
                            m.insert("stats".into(), report.stats.to_value());
                        }
                        Value::Object(m)
                    }
                }
            }
            "notify_edit" => {
                let Some(source) = request.get("source").and_then(Value::as_str) else {
                    return error_response("notify_edit needs a \"source\" field");
                };
                let edited = match parse_program(source) {
                    Ok(p) => p,
                    Err(e) => return error_response(&format!("parse error: {e}")),
                };
                let _gate = self
                    .edit_gate
                    .write()
                    .unwrap_or_else(PoisonError::into_inner);
                let base = self
                    .resident
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                let Some(base) = base else {
                    return error_response("notify_edit before any analyze: nothing is resident");
                };
                self.edits.fetch_add(1, Ordering::Relaxed);
                let (ctx, stats) = self.engine.apply_edit(&base, &edited);
                *self.resident.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(Arc::clone(&ctx));
                let mut m = Map::new();
                m.insert("ok".into(), Value::from(true));
                m.insert(
                    "program_hash".into(),
                    Value::from(format!("{:016x}", ctx.program_hash)),
                );
                m.insert("invalidation".into(), invalidation_to_value(&stats));
                Value::Object(m)
            }
            "stats" => {
                let cache = self.engine.cache();
                let store = self.engine.ctx_store();
                let mut engine_stats = Map::new();
                engine_stats.insert("cache_hits".into(), Value::from(cache.hits()));
                engine_stats.insert("cache_misses".into(), Value::from(cache.misses()));
                engine_stats.insert("cached_results".into(), Value::from(cache.len()));
                engine_stats.insert("resident_contexts".into(), Value::from(store.len()));
                engine_stats.insert("ctx_hits".into(), Value::from(store.hits()));
                engine_stats.insert("ctx_misses".into(), Value::from(store.misses()));
                engine_stats.insert("evictions".into(), Value::from(self.engine.ctx_evictions()));
                let pts = self.engine.pointsto_cache();
                let mut pointsto = Map::new();
                pointsto.insert("batch_hits".into(), Value::from(pts.hits()));
                pointsto.insert("batch_misses".into(), Value::from(pts.misses()));
                pointsto.insert("solves_cold".into(), Value::from(pts.solves_cold()));
                pointsto.insert(
                    "solves_repropagate".into(),
                    Value::from(pts.solves_repropagate()),
                );
                pointsto.insert(
                    "solves_delta_repair".into(),
                    Value::from(pts.solves_delta()),
                );
                engine_stats.insert("pointsto".into(), Value::Object(pointsto));
                let mut m = Map::new();
                m.insert("ok".into(), Value::from(true));
                m.insert("protocol".into(), Value::from(PROTOCOL_VERSION));
                m.insert(
                    "uptime_ms".into(),
                    Value::from(self.started.elapsed().as_millis() as u64),
                );
                m.insert(
                    "requests".into(),
                    Value::from(self.requests.load(Ordering::Relaxed)),
                );
                m.insert(
                    "analyzes".into(),
                    Value::from(self.analyzes.load(Ordering::Relaxed)),
                );
                m.insert(
                    "edits".into(),
                    Value::from(self.edits.load(Ordering::Relaxed)),
                );
                let mut verbs = Map::new();
                for (verb, count) in self.verbs.snapshot() {
                    verbs.insert(verb.into(), Value::from(count));
                }
                m.insert("verbs".into(), Value::Object(verbs));
                let slow: Vec<Value> = self
                    .slow
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .iter()
                    .map(|r| {
                        let mut e = Map::new();
                        e.insert("verb".into(), Value::from(r.verb.as_str()));
                        e.insert("micros".into(), Value::from(r.micros));
                        e.insert("at_ms".into(), Value::from(r.at_ms));
                        Value::Object(e)
                    })
                    .collect();
                m.insert("slow_requests".into(), Value::Array(slow));
                m.insert("engine".into(), Value::Object(engine_stats));
                if let Some(layer) = &self.persist {
                    let mut persist = Map::new();
                    persist.insert("hits".into(), Value::from(layer.hits()));
                    persist.insert("misses".into(), Value::from(layer.misses()));
                    persist.insert("writes".into(), Value::from(layer.writes()));
                    persist.insert("pruned".into(), Value::from(layer.pruned()));
                    persist.insert("writer".into(), Value::from(layer.writer_id()));
                    m.insert("persist".into(), Value::Object(persist));
                }
                Value::Object(m)
            }
            "metrics" => {
                let mut m = Map::new();
                m.insert("ok".into(), Value::from(true));
                m.insert("metrics_text".into(), Value::from(self.metrics_text()));
                Value::Object(m)
            }
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                let mut m = Map::new();
                m.insert("ok".into(), Value::from(true));
                Value::Object(m)
            }
            other => error_response(&format!("unknown cmd {other:?}")),
        }
    }
}

/// A running daemon (see [`Daemon::spawn`] / [`Daemon::serve`]).
pub struct Daemon;

/// Handle to a daemon spawned in the background; join it after asking the
/// server to shut down (e.g. via [`crate::Client::shutdown`]).
pub struct DaemonHandle {
    socket: PathBuf,
    accept_thread: JoinHandle<()>,
}

impl DaemonHandle {
    /// The socket the daemon is listening on.
    pub fn socket(&self) -> &PathBuf {
        &self.socket
    }

    /// Waits for the accept loop to exit (it exits once a client sent
    /// `shutdown`).
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

impl Daemon {
    fn bind(config: &DaemonConfig) -> io::Result<(UnixListener, Arc<State>)> {
        if let Some(parent) = config.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // Ownership of the socket path is an exclusive OS lock on a
        // sidecar `<socket>.lock` file, held for the daemon's lifetime
        // and released by the kernel on exit, clean or not. A bare
        // probe-then-unlink would be a TOCTOU: two daemons starting
        // concurrently could both observe a dead socket, and the loser's
        // `remove_file` would unlink the path the winner had just bound.
        // The lock also covers the exit-time cleanup in the accept loop,
        // which could otherwise unlink a *newer* daemon's socket when an
        // old daemon shuts down late. The lock file itself is never
        // removed — unlinking it would reopen the race through a second
        // inode.
        let mut lock_path = config.socket.clone().into_os_string();
        lock_path.push(".lock");
        let socket_lock = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(PathBuf::from(lock_path))?;
        if let Err(err) = socket_lock.try_lock() {
            return Err(match err {
                std::fs::TryLockError::WouldBlock => io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!(
                        "another daemon owns (or is starting on) {}",
                        config.socket.display()
                    ),
                ),
                // A lock the filesystem cannot take at all (e.g. ENOLCK)
                // is an I/O problem, not a second daemon — report it as
                // itself so the operator does not chase a phantom.
                std::fs::TryLockError::Error(e) => e,
            });
        }
        // Holding the lock: a live daemon on this path is impossible (it
        // would hold the lock), so any socket file here is leftover from
        // a dead process — but keep the probe as a guard against foreign,
        // non-lock-aware listeners before unlinking.
        if config.socket.exists() {
            if UnixStream::connect(&config.socket).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving {}", config.socket.display()),
                ));
            }
            let _ = std::fs::remove_file(&config.socket);
        }
        let listener = UnixListener::bind(&config.socket)?;
        let persist = match &config.cache_dir {
            Some(dir) => Some(Arc::new(PersistLayer::open(dir)?)),
            None => None,
        };
        // A daemon always meters itself: counters are a handful of sharded
        // atomics with no per-request allocation, and the `metrics` verb is
        // useless without them. Spans stay opt-in (`IVY_TRACE=1`) — a
        // long-lived server must not accumulate span records unasked.
        ivy_telemetry::enable_counters();
        let state = Arc::new(State {
            engine: fleet_engine(config.threads, persist.clone()),
            persist,
            resident: Mutex::new(None),
            edit_gate: RwLock::new(()),
            connections: Mutex::new(std::collections::HashMap::new()),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            analyzes: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            verbs: VerbCounters::default(),
            slow: Mutex::new(std::collections::VecDeque::new()),
            shutdown: AtomicBool::new(false),
            _socket_lock: socket_lock,
        });
        Ok((listener, state))
    }

    /// Runs the accept loop until a client sends `shutdown`. Each
    /// connection is served on its own thread; the shared state makes
    /// concurrent answers deterministic and byte-identical.
    fn accept_loop(listener: UnixListener, state: Arc<State>, socket: PathBuf) {
        let mut clients: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Reap finished connections so a long-lived daemon does not
            // accumulate one handle per connection ever served.
            clients.retain(|client| !client.is_finished());
            let Ok(stream) = stream else {
                continue;
            };
            let state = Arc::clone(&state);
            let socket = socket.clone();
            clients.push(thread::spawn(move || {
                serve_connection(stream, &state, &socket);
            }));
        }
        for client in clients {
            let _ = client.join();
        }
        let _ = std::fs::remove_file(&socket);
    }

    /// Starts a daemon in a background thread of this process and returns
    /// immediately. The "zero-deploy" mode used by tests, the bench, and
    /// the session example; production use runs [`Daemon::serve`] in a
    /// dedicated process (`ivy-daemon` binary).
    pub fn spawn(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let (listener, state) = Self::bind(&config)?;
        let socket = config.socket.clone();
        let accept_socket = socket.clone();
        let accept_thread =
            thread::spawn(move || Self::accept_loop(listener, state, accept_socket));
        Ok(DaemonHandle {
            socket,
            accept_thread,
        })
    }

    /// Binds and serves on the calling thread until shutdown (the blocking
    /// mode the `ivy-daemon` binary runs).
    pub fn serve(config: DaemonConfig) -> io::Result<()> {
        let (listener, state) = Self::bind(&config)?;
        let socket = config.socket.clone();
        Self::accept_loop(listener, state, socket);
        Ok(())
    }
}

/// Serves one client connection: frames in, frames out, until the peer
/// closes or asks for shutdown.
fn serve_connection(stream: UnixStream, state: &State, socket: &PathBuf) {
    // Under fd pressure the registry clone can fail; shed the connection
    // (the client sees a clean close) rather than serve it invisibly.
    if !state.register_connection(&stream) {
        return;
    }
    let reader = stream.try_clone();
    connection_loop(reader, stream, state, socket);
}

fn connection_loop(
    reader: io::Result<UnixStream>,
    stream: UnixStream,
    state: &State,
    socket: &PathBuf,
) {
    let mut reader = match reader {
        Ok(s) => s,
        Err(_) => {
            state.deregister_connection(&stream);
            return;
        }
    };
    let mut writer = stream;
    let mut shutdown_sent = false;
    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(e) => {
                if !state.shutdown.load(Ordering::SeqCst) {
                    // A torn read during shutdown is our own teardown of
                    // the socket, not a client error worth answering.
                    let _ = write_frame(&mut writer, &error_response(&format!("bad frame: {e}")));
                }
                break;
            }
        };
        let response = state.handle(&request);
        shutdown_sent = state.shutdown.load(Ordering::SeqCst)
            && request.get("cmd").and_then(Value::as_str) == Some("shutdown");
        let _ = write_frame(&mut writer, &response);
        if shutdown_sent && response_ok(&response) {
            break;
        }
    }
    state.deregister_connection(&writer);
    if shutdown_sent {
        // The requester has its answer; now unblock every idle connection
        // and wake the accept loop so it observes the flag and exits.
        state.close_connections();
        let _ = UnixStream::connect(socket);
    }
}
