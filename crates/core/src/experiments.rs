//! The experiment harness: one function per table / experiment in the paper.
//!
//! Every experiment is deterministic: the corpus, the workloads, and the VM
//! cost model contain no wall-clock or host dependence, so the numbers are
//! reproducible bit-for-bit. EXPERIMENTS.md records paper-vs-measured for
//! each of these.

use crate::extensions::{errcheck, lockcheck, stackcheck, ErrReport, LockReport, StackReport};
use ivy_analysis::pointsto::Sensitivity;
use ivy_blockstop::{insert_asserts, BlockStop, BlockStopConfig};
use ivy_ccount::{FixPlan, FreeVerification, NullFix, Overhead};
use ivy_cmir::ast::Program;
use ivy_deputy::{BurdenStats, ConversionReport, Deputy};
use ivy_engine::{Engine, EngineStats};
use ivy_kernelgen::{
    boot_workload, fork_workload, hbench_suite, light_use_workload, module_load_workload,
    KernelBuild, KernelConfig, Workload,
};
use ivy_vm::{RunStats, Value, Vm, VmConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// How large an experiment run should be.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Kernel generation parameters.
    pub kernel: KernelConfig,
    /// Multiplier applied to every workload's iteration count.
    pub workload_factor: f64,
}

impl Scale {
    /// Small scale for unit/integration tests (seconds, debug build).
    pub fn test() -> Self {
        Scale {
            kernel: KernelConfig::small(),
            workload_factor: 0.1,
        }
    }

    /// Paper scale for benches and examples (release build).
    pub fn paper() -> Self {
        Scale {
            kernel: KernelConfig::paper(),
            workload_factor: 1.0,
        }
    }
}

/// Runs a workload entry on a fresh VM over `program` and returns the stats.
pub fn run_workload(program: &Program, config: VmConfig, workload: &Workload) -> RunStats {
    let mut vm = Vm::new(program.clone(), config).expect("kernel lays out");
    vm.run(
        &workload.entry,
        vec![
            Value::Int(i64::from(workload.iters)),
            Value::Int(i64::from(workload.size)),
        ],
    )
    .unwrap_or_else(|e| panic!("workload {} trapped: {e}", workload.name));
    vm.stats.clone()
}

// ---------------------------------------------------------------------------
// E1 / Table 1 — relative performance of the deputized kernel
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbenchRow {
    /// Benchmark name (`bw_*` / `lat_*`).
    pub name: String,
    /// Cycles on the baseline (unchecked) kernel.
    pub baseline_cycles: u64,
    /// Cycles on the deputized kernel.
    pub deputized_cycles: u64,
    /// Run-time checks executed during the deputized run.
    pub checks_executed: u64,
}

impl HbenchRow {
    /// Relative performance (deputized / baseline), as reported in Table 1.
    pub fn relative(&self) -> f64 {
        if self.baseline_cycles == 0 {
            1.0
        } else {
            self.deputized_cycles as f64 / self.baseline_cycles as f64
        }
    }
}

/// Result of the Table 1 experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table1 {
    /// One row per hbench benchmark.
    pub rows: Vec<HbenchRow>,
    /// Deputy conversion statistics for the kernel used.
    pub conversion: ConversionReport,
}

impl Table1 {
    /// Renders the table in the paper's two-column layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>9}    {:<14} {:>9}",
            "Benchmark", "Rel. Perf.", "Benchmark", "Rel. Perf."
        );
        let half = self.rows.len().div_ceil(2);
        for i in 0..half {
            let left = &self.rows[i];
            let right = self.rows.get(half + i);
            match right {
                Some(r) => {
                    let _ = writeln!(
                        out,
                        "{:<14} {:>9.2}    {:<14} {:>9.2}",
                        left.name,
                        left.relative(),
                        r.name,
                        r.relative()
                    );
                }
                None => {
                    let _ = writeln!(out, "{:<14} {:>9.2}", left.name, left.relative());
                }
            }
        }
        out
    }

    /// Geometric mean of the relative performance across all rows.
    pub fn geomean(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.rows.iter().map(|r| r.relative().ln()).sum();
        (sum / self.rows.len() as f64).exp()
    }
}

/// Runs the Table 1 experiment: every hbench benchmark on the baseline and
/// deputized kernels.
pub fn table1_hbench(scale: &Scale) -> Table1 {
    let build = KernelBuild::generate(&scale.kernel);
    let conversion = Deputy::new().convert(&build.program);
    let mut table = Table1 {
        rows: Vec::new(),
        conversion: conversion.report.clone(),
    };
    for workload in hbench_suite() {
        let w = workload.scaled(scale.workload_factor);
        let base = run_workload(&build.program, VmConfig::baseline(), &w);
        let dep = run_workload(&conversion.program, VmConfig::deputized(), &w);
        table.rows.push(HbenchRow {
            name: w.name.clone(),
            baseline_cycles: base.cycles,
            deputized_cycles: dep.cycles,
            checks_executed: dep.total_checks(),
        });
    }
    table
}

// ---------------------------------------------------------------------------
// E2 — annotation burden
// ---------------------------------------------------------------------------

/// Result of the annotation-burden experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BurdenResult {
    /// Line-level statistics.
    pub burden: BurdenStats,
    /// Deputy conversion report (checks inserted, static discharge ratio).
    pub conversion: ConversionReport,
    /// Total kernel lines (pretty-printed form), for the denominator.
    pub total_lines: u64,
}

/// Runs the annotation-burden experiment (the prose numbers of §2.1).
pub fn deputy_burden(scale: &Scale) -> BurdenResult {
    let build = KernelBuild::generate(&scale.kernel);
    let burden = ivy_deputy::stats::burden(&build.program);
    let conversion = Deputy::new().convert(&build.program);
    BurdenResult {
        total_lines: burden.total_lines,
        burden,
        conversion: conversion.report,
    }
}

// ---------------------------------------------------------------------------
// E3 — CCount free verification (boot + light use)
// ---------------------------------------------------------------------------

/// Result of the free-verification experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FreesResult {
    /// Free verification on the unfixed kernel (boot + light use).
    pub unfixed: FreeVerification,
    /// Free verification after applying the fix plan.
    pub fixed: FreeVerification,
    /// Number of pointer-nulling fixes applied.
    pub null_fixes: usize,
    /// Number of delayed-free-scope fixes applied.
    pub delayed_free_fixes: usize,
}

/// Builds the CCount fix plan for a generated kernel from its ground truth.
pub fn fix_plan_for(build: &KernelBuild) -> FixPlan {
    FixPlan {
        null_fixes: build
            .ground_truth
            .null_fixes()
            .into_iter()
            .map(|(function, lvalue)| NullFix { function, lvalue })
            .collect(),
        delayed_free_functions: build.ground_truth.delayed_free_functions(),
    }
}

/// Runs the E3 experiment: boot-plus-light-use free verification before and
/// after the fix plan.
pub fn ccount_frees(scale: &Scale) -> FreesResult {
    let build = KernelBuild::generate(&scale.kernel);
    let boot = boot_workload(scale.kernel.boot_cycles);
    let light = light_use_workload(((16.0 * scale.workload_factor) as u32).max(2));

    let run_phases = |program: &Program| -> FreeVerification {
        let mut vm = Vm::new(program.clone(), VmConfig::ccounted(false)).expect("kernel lays out");
        vm.run(
            &boot.entry,
            vec![Value::Int(i64::from(boot.iters)), Value::Int(0)],
        )
        .expect("boot runs");
        vm.run(
            &light.entry,
            vec![
                Value::Int(i64::from(light.iters)),
                Value::Int(i64::from(light.size)),
            ],
        )
        .expect("light use runs");
        FreeVerification::from_stats(&vm.stats)
    };

    let unfixed = run_phases(&build.program);
    let plan = fix_plan_for(&build);
    let fixed_program = plan.apply(&build.program);
    let fixed = run_phases(&fixed_program);
    FreesResult {
        unfixed,
        fixed,
        null_fixes: plan.null_fixes.len(),
        delayed_free_fixes: plan.delayed_free_functions.len(),
    }
}

// ---------------------------------------------------------------------------
// E4 — CCount overhead (fork, module loading; UP and SMP)
// ---------------------------------------------------------------------------

/// Result of the CCount overhead experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadResult {
    /// Fork overhead on a uniprocessor kernel.
    pub fork_up: Overhead,
    /// Fork overhead on an SMP kernel (locked refcount operations).
    pub fork_smp: Overhead,
    /// Module-loading overhead on a uniprocessor kernel.
    pub module_up: Overhead,
    /// Module-loading overhead on an SMP kernel.
    pub module_smp: Overhead,
}

impl OverheadResult {
    /// Renders the four numbers the paper reports in §2.2.
    pub fn render(&self) -> String {
        format!(
            "fork:        UP {:>5.1}%   SMP {:>5.1}%\nmodule-load: UP {:>5.1}%   SMP {:>5.1}%\n",
            self.fork_up.percent(),
            self.fork_smp.percent(),
            self.module_up.percent(),
            self.module_smp.percent()
        )
    }
}

/// Runs the E4 experiment.
pub fn ccount_overhead(scale: &Scale) -> OverheadResult {
    let build = KernelBuild::generate(&scale.kernel);
    let fork = fork_workload().scaled(scale.workload_factor);
    let module = module_load_workload().scaled(scale.workload_factor);

    let cycles = |config: VmConfig, w: &Workload| run_workload(&build.program, config, w).cycles;

    let fork_base = cycles(VmConfig::baseline(), &fork);
    let module_base = cycles(VmConfig::baseline(), &module);
    OverheadResult {
        fork_up: Overhead::new(fork_base, cycles(VmConfig::ccounted(false), &fork)),
        fork_smp: Overhead::new(fork_base, cycles(VmConfig::ccounted(true), &fork)),
        module_up: Overhead::new(module_base, cycles(VmConfig::ccounted(false), &module)),
        module_smp: Overhead::new(module_base, cycles(VmConfig::ccounted(true), &module)),
    }
}

// ---------------------------------------------------------------------------
// E5 — BlockStop findings
// ---------------------------------------------------------------------------

/// Result of the BlockStop experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockStopResult {
    /// Findings before any run-time checks are added.
    pub findings_before: usize,
    /// Of those, findings attributable to the seeded real bugs.
    pub real_bug_findings: usize,
    /// Distinct seeded bugs covered by at least one finding.
    pub real_bugs_found: usize,
    /// Findings not attributable to a seeded bug (false positives).
    pub false_positives: usize,
    /// Run-time assertions inserted to silence the false positives.
    pub asserts_inserted: u64,
    /// Findings remaining after the assertions are taken into account.
    pub findings_after: usize,
    /// Assertion failures observed when booting the asserted kernel (should
    /// be zero: the assertions encode true facts).
    pub runtime_assert_failures: u64,
    /// Blocking-while-atomic violations actually observed at run time
    /// (ground truth for the real bugs).
    pub runtime_violations: usize,
}

/// Runs the E5 experiment.
pub fn blockstop_results(scale: &Scale) -> BlockStopResult {
    let build = KernelBuild::generate(&scale.kernel);
    let before = BlockStop::new().analyze(&build.program);

    // Classify findings against the seeded ground truth.
    let mut involved: BTreeSet<String> = BTreeSet::new();
    for bug in &build.ground_truth.blocking_bugs {
        involved.insert(bug.caller.clone());
        involved.insert(bug.callee.clone());
    }
    let is_real = |f: &ivy_blockstop::Finding| {
        involved.contains(&f.caller)
            || f.blocking_targets.iter().any(|t| involved.contains(t))
            || f.example_chain.iter().any(|t| involved.contains(t))
    };
    let real_bug_findings = before.findings.iter().filter(|f| is_real(f)).count();
    let false_positives = before.findings.len() - real_bug_findings;
    let real_bugs_found = build
        .ground_truth
        .blocking_bugs
        .iter()
        .filter(|bug| {
            before.findings.iter().any(|f| {
                f.caller == bug.caller
                    || f.blocking_targets.contains(&bug.callee)
                    || f.example_chain.contains(&bug.caller)
            })
        })
        .count();

    // Silence the false positives with run-time assertions and re-analyse.
    let asserted = build.asserted_functions();
    let (asserted_program, asserts_inserted) = insert_asserts(&build.program, &asserted);
    let after = BlockStop::with_config(BlockStopConfig {
        asserted_functions: asserted,
        ..BlockStopConfig::default()
    })
    .analyze(&asserted_program);

    // Boot the asserted kernel with the assertions armed: they must not fire.
    let boot = boot_workload(scale.kernel.boot_cycles);
    let mut vm = Vm::new(
        asserted_program,
        VmConfig {
            blockstop_asserts: true,
            ..VmConfig::baseline()
        },
    )
    .expect("kernel lays out");
    vm.run(
        &boot.entry,
        vec![Value::Int(i64::from(boot.iters)), Value::Int(0)],
    )
    .expect("boot runs");

    BlockStopResult {
        findings_before: before.findings.len(),
        real_bug_findings,
        real_bugs_found,
        false_positives,
        asserts_inserted,
        findings_after: after.findings.len(),
        runtime_assert_failures: vm.stats.assert_failures,
        runtime_violations: vm.stats.blocking_violations.len(),
    }
}

// ---------------------------------------------------------------------------
// E6 — points-to precision ablation
// ---------------------------------------------------------------------------

/// One row of the points-to ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Points-to variant.
    pub sensitivity: String,
    /// Total BlockStop findings with this variant.
    pub findings: usize,
    /// False positives (not attributable to seeded bugs).
    pub false_positives: usize,
    /// Mean number of targets per indirect call.
    pub mean_indirect_fanout: f64,
}

/// Runs the E6 ablation: BlockStop precision under the three points-to
/// variants.
pub fn pointsto_ablation(scale: &Scale) -> Vec<AblationRow> {
    let build = KernelBuild::generate(&scale.kernel);
    let mut involved: BTreeSet<String> = BTreeSet::new();
    for bug in &build.ground_truth.blocking_bugs {
        involved.insert(bug.caller.clone());
        involved.insert(bug.callee.clone());
    }
    [
        Sensitivity::Steensgaard,
        Sensitivity::Andersen,
        Sensitivity::AndersenField,
    ]
    .into_iter()
    .map(|s| {
        let report = BlockStop::with_config(BlockStopConfig {
            sensitivity: s,
            ..BlockStopConfig::default()
        })
        .analyze(&build.program);
        let pts = ivy_analysis::pointsto::analyze(&build.program, s);
        let real = report
            .findings
            .iter()
            .filter(|f| {
                involved.contains(&f.caller)
                    || f.blocking_targets.iter().any(|t| involved.contains(t))
                    || f.example_chain.iter().any(|t| involved.contains(t))
            })
            .count();
        AblationRow {
            sensitivity: s.name().to_string(),
            findings: report.findings.len(),
            false_positives: report.findings.len() - real,
            mean_indirect_fanout: pts.mean_indirect_fanout(),
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// E8 — the analysis engine: unified report, incrementality, fleet mode
// ---------------------------------------------------------------------------

/// The default engine: Deputy, CCount, and BlockStop registered as
/// plugins — built from the shared [`ivy_daemon::fleet_checkers`] list,
/// so the batch fleet and the daemon's resident fleet cannot drift.
pub fn default_engine(threads: usize) -> Engine {
    let mut engine = Engine::new().with_threads(threads);
    for checker in ivy_daemon::fleet_checkers(ivy_deputy::DeputyConfig::default()) {
        engine = engine.with_checker(checker);
    }
    engine
}

/// Result of the engine experiment: the unified diagnostic report classified
/// against the seeded ground truth, plus cache behaviour cold vs warm and in
/// corpus (fleet) mode.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineResult {
    /// Total diagnostics across all three checkers.
    pub total_diagnostics: usize,
    /// Error-severity diagnostics (sound findings).
    pub errors: usize,
    /// Warning-severity diagnostics.
    pub warnings: usize,
    /// Info-severity diagnostics (instrumentation facts).
    pub infos: usize,
    /// BlockStop error diagnostics attributable to a seeded blocking bug.
    pub real_bug_findings: usize,
    /// BlockStop error diagnostics not attributable to one (false
    /// positives, silenced in the pipeline by run-time assertions).
    pub false_positives: usize,
    /// Stats of the first (cold-cache) run.
    pub cold: EngineStats,
    /// Stats of a repeat run over the unchanged kernel.
    pub warm: EngineStats,
    /// Number of corpus variants analyzed in fleet mode.
    pub corpus_variants: usize,
    /// Fraction of per-function results served from cache across the
    /// corpus run (variants share most functions, so this is high even
    /// with a cold cache).
    pub corpus_hit_rate: f64,
}

/// Runs the engine experiment: one kernel analyzed cold and warm, then a
/// seed-varied corpus in fleet mode with a shared cache.
pub fn engine_results(scale: &Scale) -> EngineResult {
    let build = KernelBuild::generate(&scale.kernel);
    let engine = default_engine(0);
    let cold = engine.analyze(&build.program);
    let warm = engine.analyze(&build.program);

    // Classify BlockStop findings against the seeded ground truth: a
    // diagnostic is "real" when its function or message names a function
    // involved in a seeded bug (diagnostic messages carry the blocking
    // targets and an example call chain).
    let mut involved: BTreeSet<String> = BTreeSet::new();
    for bug in &build.ground_truth.blocking_bugs {
        involved.insert(bug.caller.clone());
        involved.insert(bug.callee.clone());
    }
    let blockstop_errors: Vec<_> = cold
        .diagnostics
        .iter()
        .filter(|d| d.checker == "blockstop" && d.severity == ivy_engine::Severity::Error)
        .collect();
    let real_bug_findings = blockstop_errors
        .iter()
        .filter(|d| {
            involved.contains(&d.function)
                || involved
                    .iter()
                    .any(|name| d.message.contains(name.as_str()))
        })
        .count();
    let false_positives = blockstop_errors.len() - real_bug_findings;

    // Fleet mode: analyze seed-varied kernel variants concurrently with a
    // fresh shared cache. Variants share almost all functions, so later
    // variants are served largely from cache entries of earlier ones.
    let variants: Vec<_> = (0..3)
        .map(|i| {
            let mut config = scale.kernel.clone();
            config.seed = config.seed.wrapping_add(i);
            KernelBuild::generate(&config).program
        })
        .collect();
    let fleet = default_engine(0);
    let reports = fleet.analyze_corpus(&variants);
    let (hits, misses) = reports.iter().fold((0u64, 0u64), |(h, m), r| {
        (h + r.stats.cache_hits, m + r.stats.cache_misses)
    });

    let mut counts = BTreeMap::new();
    for d in &cold.diagnostics {
        *counts.entry(d.severity).or_insert(0usize) += 1;
    }
    EngineResult {
        total_diagnostics: cold.diagnostics.len(),
        errors: counts
            .get(&ivy_engine::Severity::Error)
            .copied()
            .unwrap_or(0),
        warnings: counts
            .get(&ivy_engine::Severity::Warning)
            .copied()
            .unwrap_or(0),
        infos: counts
            .get(&ivy_engine::Severity::Info)
            .copied()
            .unwrap_or(0),
        real_bug_findings,
        false_positives,
        cold: cold.stats,
        warm: warm.stats,
        corpus_variants: reports.len(),
        corpus_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
    }
}

// ---------------------------------------------------------------------------
// E9 — the dynamic soundness oracle
// ---------------------------------------------------------------------------

/// Result of the oracle experiment: the soundness/precision numbers of the
/// traced differential run, plus engine diagnostics classified against the
/// *observed* (executed) defects — not just the seeded ground truth. A
/// diagnostic confirmed by execution is a true positive beyond doubt; a
/// seeded defect the execution never reached says the workload, not the
/// analysis, is incomplete.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OracleResult {
    /// Entry executions performed.
    pub entries_run: usize,
    /// Deduplicated dynamic facts checked for subsumption.
    pub facts_checked: usize,
    /// Soundness violations (the paper's claim holds iff this is 0).
    pub soundness_violations: usize,
    /// Distinct `(caller, callee)` blocking events observed at run time.
    pub observed_blocking: usize,
    /// Functions with an observed bad free.
    pub observed_bad_free_functions: usize,
    /// Seeded blocking bugs whose caller was observed blocking (coverage
    /// of the seeded ground truth by the traced workloads).
    pub seeded_blocking_observed: usize,
    /// Seeded bad-free defects whose function had an observed bad free.
    pub seeded_bad_frees_observed: usize,
    /// BlockStop error diagnostics from the engine fleet.
    pub blockstop_errors: usize,
    /// Of those, diagnostics confirmed by an observed blocking event
    /// (true positives beyond doubt).
    pub blockstop_confirmed_by_execution: usize,
    /// CCount instrumentation diagnostics naming functions with free
    /// sites.
    pub ccount_free_site_diags: usize,
    /// Of those, functions where a bad free was actually observed.
    pub ccount_confirmed_by_execution: usize,
    /// Points-to precision (witnessed/claimed) per sensitivity name.
    pub pointsto_precision: BTreeMap<String, f64>,
}

/// Runs the oracle experiment: trace the kernel session, check
/// subsumption at every sensitivity, and classify the engine fleet's
/// diagnostics against what execution actually witnessed.
pub fn oracle_results(scale: &Scale) -> OracleResult {
    use ivy_oracle::{EntrySpec, Oracle};
    let build = KernelBuild::generate(&scale.kernel);
    let entries = EntrySpec::defaults_for(&build.program, 6);
    let report = Oracle::default().run(&build.program, &entries);
    let engine_report = default_engine(0).analyze(&build.program);

    let observed_callers: BTreeSet<&String> =
        report.observed_blocking.iter().map(|(c, _)| c).collect();
    let observed_names: BTreeSet<&String> = report
        .observed_blocking
        .iter()
        .flat_map(|(c, t)| [c, t])
        .collect();

    let blockstop_errors: Vec<_> = engine_report
        .diagnostics
        .iter()
        .filter(|d| d.checker == "blockstop" && d.severity == ivy_engine::Severity::Error)
        .collect();
    // Exact structured match: a finding is execution-confirmed when the
    // function it indicts was observed making a blocking call in atomic
    // context (the oracle's per-finding coverage predicate is the dual of
    // this; substring matching on messages would over-count).
    let blockstop_confirmed = blockstop_errors
        .iter()
        .filter(|d| observed_callers.contains(&d.function))
        .count();

    let ccount_free_diags: Vec<_> = engine_report
        .diagnostics
        .iter()
        .filter(|d| d.checker == "ccount" && d.message.contains("free site"))
        .collect();
    let ccount_confirmed = ccount_free_diags
        .iter()
        .filter(|d| report.observed_bad_free_functions.contains(&d.function))
        .count();

    // A seeded bug is "observed" when a runtime event implicates either
    // side of it (the watchdog bug's caller is the interrupt handler, but
    // the VM attributes the event to the sleeping helper it reaches).
    let seeded_blocking_observed = build
        .ground_truth
        .blocking_bugs
        .iter()
        .filter(|b| observed_names.contains(&b.caller) || observed_names.contains(&b.callee))
        .count();
    let seeded_bad_frees_observed = build
        .ground_truth
        .bad_free_defects
        .iter()
        .filter(|d| report.observed_bad_free_functions.contains(&d.function))
        .count();

    OracleResult {
        entries_run: report.entries_run,
        facts_checked: report.facts.total(),
        soundness_violations: report.violations.len(),
        observed_blocking: report.observed_blocking.len(),
        observed_bad_free_functions: report.observed_bad_free_functions.len(),
        seeded_blocking_observed,
        seeded_bad_frees_observed,
        blockstop_errors: blockstop_errors.len(),
        blockstop_confirmed_by_execution: blockstop_confirmed,
        ccount_free_site_diags: ccount_free_diags.len(),
        ccount_confirmed_by_execution: ccount_confirmed,
        pointsto_precision: report
            .precision
            .iter()
            .map(|(s, p)| (s.clone(), p.pointsto.rate()))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// E7 — extension analyses
// ---------------------------------------------------------------------------

/// Result of the extension analyses (§3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtensionsResult {
    /// Lock-safety analysis output.
    pub locks: LockReport,
    /// Stack-depth analysis output (8 kB budget).
    pub stack: StackReport,
    /// Error-code analysis output.
    pub errors: ErrReport,
}

/// Runs the E7 experiment.
pub fn extensions(scale: &Scale) -> ExtensionsResult {
    let build = KernelBuild::generate(&scale.kernel);
    ExtensionsResult {
        locks: lockcheck(&build.program),
        stack: stackcheck(&build.program, 8 * 1024),
        errors: errcheck(&build.program),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds_at_test_scale() {
        let t = table1_hbench(&Scale::test());
        assert_eq!(t.rows.len(), 21);
        for row in &t.rows {
            assert!(
                row.relative() >= 0.99,
                "{} got faster? {}",
                row.name,
                row.relative()
            );
            assert!(
                row.relative() < 2.0,
                "{} slowed more than 2x: {}",
                row.name,
                row.relative()
            );
        }
        assert!(t.geomean() < 1.5);
        let rendered = t.render();
        assert!(rendered.contains("bw_mem_cp"));
        assert!(rendered.contains("lat_udp"));
    }

    #[test]
    fn ccount_overhead_shape() {
        let o = ccount_overhead(&Scale::test());
        assert!(o.fork_up.percent() > 0.0);
        assert!(o.fork_smp.percent() > o.fork_up.percent());
        assert!(o.module_smp.percent() >= o.module_up.percent());
        assert!(o.fork_smp.percent() > o.module_smp.percent());
        assert!(!o.render().is_empty());
    }

    #[test]
    fn engine_results_classify_and_cache() {
        let r = engine_results(&Scale::test());
        assert!(r.total_diagnostics > 0);
        assert!(
            r.errors > 0,
            "the seeded blocking bugs must surface as errors"
        );
        assert!(r.infos > 0, "instrumentation info diagnostics expected");
        assert!(r.real_bug_findings >= 2, "both seeded bugs found: {r:?}");
        assert!(
            r.false_positives > 0,
            "conservative analysis has false positives"
        );
        assert_eq!(r.cold.cache_hits, 0, "first run is cold");
        assert!(
            r.warm.hit_rate() >= 0.9,
            "warm run must be cache-served: {:?}",
            r.warm
        );
        assert_eq!(r.corpus_variants, 3);
        assert!(
            r.corpus_hit_rate > 0.5,
            "seed-varied variants share most cache entries: {}",
            r.corpus_hit_rate
        );
    }

    #[test]
    fn oracle_results_validate_soundness_and_classify_against_execution() {
        let r = oracle_results(&Scale::test());
        assert_eq!(
            r.soundness_violations, 0,
            "the analyses must subsume every traced fact"
        );
        assert!(r.facts_checked > 100);
        assert!(r.entries_run >= 2);
        // The traced session reaches the seeded defect population.
        assert_eq!(r.seeded_blocking_observed, 2, "{r:?}");
        assert!(
            r.seeded_bad_frees_observed
                >= KernelConfig::small().cache_defects + KernelConfig::small().ring_defects,
            "{r:?}"
        );
        // Execution-confirmed diagnostics exist, and are a strict subset
        // of the conservative static findings (the false positives the
        // paper silences with run-time assertions are exactly the
        // unconfirmed remainder).
        assert!(r.blockstop_confirmed_by_execution >= 2);
        assert!(r.blockstop_confirmed_by_execution < r.blockstop_errors);
        assert!(r.ccount_confirmed_by_execution >= 1);
        assert!(r.ccount_confirmed_by_execution <= r.ccount_free_site_diags);
        // Precision is measured per sensitivity and orders correctly.
        assert!(r.pointsto_precision["andersen+field"] > r.pointsto_precision["steensgaard"]);
    }

    #[test]
    fn blockstop_results_cover_ground_truth() {
        let r = blockstop_results(&Scale::test());
        assert_eq!(r.real_bugs_found, 2);
        assert!(r.false_positives > 0);
        assert!(r.asserts_inserted >= 1);
        assert!(r.findings_after < r.findings_before);
        assert_eq!(r.runtime_assert_failures, 0);
        assert!(r.runtime_violations > 0);
    }
}
