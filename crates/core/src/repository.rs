//! The collaborative annotation repository proposed in §3.2.
//!
//! The paper proposes "a collaborative database of source code information"
//! — pointer bounds, aliasing, blocking behaviour, error codes — that tools
//! and researchers can share. This module makes that concrete: facts are
//! harvested from a program (and from tool results), merged, and serialised
//! to JSON so they can be stored next to the source.

use ivy_blockstop::BlockStopReport;
use ivy_cmir::ast::Program;
use ivy_cmir::pretty::type_str;
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// Facts recorded about one function.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionFacts {
    /// Subsystem the function belongs to.
    pub subsystem: String,
    /// Parameter types (KC syntax, annotations included).
    pub param_types: Vec<String>,
    /// Return type.
    pub return_type: String,
    /// True if the function may block (from annotations or BlockStop).
    pub may_block: bool,
    /// True if the function is trusted.
    pub trusted: bool,
    /// Error codes the function may return.
    pub error_codes: Vec<i64>,
    /// Locks the function acquires.
    pub acquires: Vec<String>,
}

/// Facts recorded about one composite type.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TypeFacts {
    /// Field names and their (annotated) types.
    pub fields: BTreeMap<String, String>,
    /// True if any field carries a Deputy annotation.
    pub annotated: bool,
}

/// The shared annotation repository.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Repository {
    /// Facts per function.
    pub functions: BTreeMap<String, FunctionFacts>,
    /// Facts per composite type.
    pub types: BTreeMap<String, TypeFacts>,
    /// Free-form provenance notes (tool name → description of what it
    /// contributed).
    pub provenance: BTreeMap<String, String>,
}

impl Repository {
    /// Harvests declaration-level facts from a program.
    pub fn from_program(program: &Program) -> Repository {
        let mut repo = Repository::default();
        for f in &program.functions {
            repo.functions.insert(
                f.name.clone(),
                FunctionFacts {
                    subsystem: f.subsystem.clone(),
                    param_types: f.params.iter().map(|p| type_str(&p.ty)).collect(),
                    return_type: type_str(&f.ret),
                    may_block: f.attrs.blocking || f.attrs.blocking_if_flag.is_some(),
                    trusted: f.attrs.trusted,
                    error_codes: f.attrs.error_codes.clone(),
                    acquires: f.attrs.acquires.clone(),
                },
            );
        }
        for c in &program.composites {
            let mut fields = BTreeMap::new();
            for field in &c.fields {
                fields.insert(field.name.clone(), type_str(&field.ty));
            }
            repo.types.insert(
                c.name.clone(),
                TypeFacts {
                    annotated: c.fields.iter().any(|f| f.is_annotated()),
                    fields,
                },
            );
        }
        repo.provenance.insert(
            "ivy-cmir".to_string(),
            "declaration-level facts harvested from source".to_string(),
        );
        repo
    }

    /// Merges the results of a BlockStop run: every function in its
    /// `may_block` set is recorded as blocking.
    pub fn absorb_blockstop(&mut self, report: &BlockStopReport) {
        for name in &report.may_block {
            self.functions.entry(name.clone()).or_default().may_block = true;
        }
        self.provenance.insert(
            "ivy-blockstop".to_string(),
            format!("{} functions marked may-block", report.may_block.len()),
        );
    }

    /// Serialises the repository to pretty JSON. Written by hand against
    /// the `Value` model so field order is explicit and byte-stable (the
    /// repository is meant to live next to source in version control, where
    /// stable serialization keeps diffs minimal).
    pub fn to_json(&self) -> String {
        let functions: Map = self
            .functions
            .iter()
            .map(|(name, f)| {
                let mut m = Map::new();
                m.insert("subsystem".into(), Value::from(f.subsystem.as_str()));
                m.insert(
                    "param_types".into(),
                    Value::Array(
                        f.param_types
                            .iter()
                            .map(|t| Value::from(t.as_str()))
                            .collect(),
                    ),
                );
                m.insert("return_type".into(), Value::from(f.return_type.as_str()));
                m.insert("may_block".into(), Value::from(f.may_block));
                m.insert("trusted".into(), Value::from(f.trusted));
                m.insert(
                    "error_codes".into(),
                    Value::Array(f.error_codes.iter().map(|c| Value::from(*c)).collect()),
                );
                m.insert(
                    "acquires".into(),
                    Value::Array(f.acquires.iter().map(|l| Value::from(l.as_str())).collect()),
                );
                (name.clone(), Value::Object(m))
            })
            .collect();
        let types: Map = self
            .types
            .iter()
            .map(|(name, t)| {
                let mut m = Map::new();
                m.insert(
                    "fields".into(),
                    Value::Object(
                        t.fields
                            .iter()
                            .map(|(f, ty)| (f.clone(), Value::from(ty.as_str())))
                            .collect(),
                    ),
                );
                m.insert("annotated".into(), Value::from(t.annotated));
                (name.clone(), Value::Object(m))
            })
            .collect();
        let provenance: Map = self
            .provenance
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.as_str())))
            .collect();

        let mut root = Map::new();
        root.insert("functions".into(), Value::Object(functions));
        root.insert("types".into(), Value::Object(types));
        root.insert("provenance".into(), Value::Object(provenance));
        serde_json::to_string_pretty(&Value::Object(root)).expect("repository serialises")
    }

    /// Loads a repository from JSON.
    pub fn from_json(json: &str) -> Result<Repository, serde_json::Error> {
        let root = serde_json::from_str(json)?;
        let str_list = |v: &Value, key: &str| -> Vec<String> {
            v.get(key)
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(|s| s.as_str().map(String::from))
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut repo = Repository::default();
        if let Some(functions) = root.get("functions").and_then(Value::as_object) {
            for (name, v) in functions {
                repo.functions.insert(
                    name.clone(),
                    FunctionFacts {
                        subsystem: v
                            .get("subsystem")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        param_types: str_list(v, "param_types"),
                        return_type: v
                            .get("return_type")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        may_block: v.get("may_block").and_then(Value::as_bool).unwrap_or(false),
                        trusted: v.get("trusted").and_then(Value::as_bool).unwrap_or(false),
                        error_codes: v
                            .get("error_codes")
                            .and_then(Value::as_array)
                            .map(|a| a.iter().filter_map(Value::as_i64).collect())
                            .unwrap_or_default(),
                        acquires: str_list(v, "acquires"),
                    },
                );
            }
        }
        if let Some(types) = root.get("types").and_then(Value::as_object) {
            for (name, v) in types {
                let fields = v
                    .get("fields")
                    .and_then(Value::as_object)
                    .map(|m| {
                        m.iter()
                            .filter_map(|(f, ty)| ty.as_str().map(|t| (f.clone(), t.to_string())))
                            .collect()
                    })
                    .unwrap_or_default();
                repo.types.insert(
                    name.clone(),
                    TypeFacts {
                        fields,
                        annotated: v.get("annotated").and_then(Value::as_bool).unwrap_or(false),
                    },
                );
            }
        }
        if let Some(provenance) = root.get("provenance").and_then(Value::as_object) {
            for (k, v) in provenance {
                if let Some(s) = v.as_str() {
                    repo.provenance.insert(k.clone(), s.to_string());
                }
            }
        }
        Ok(repo)
    }

    /// Merges another repository into this one (other wins on conflicts,
    /// except `may_block`, which is joined).
    pub fn merge(&mut self, other: &Repository) {
        for (name, facts) in &other.functions {
            let entry = self.functions.entry(name.clone()).or_default();
            let was_blocking = entry.may_block;
            *entry = facts.clone();
            entry.may_block |= was_blocking;
        }
        for (name, facts) in &other.types {
            self.types.insert(name.clone(), facts.clone());
        }
        for (k, v) in &other.provenance {
            self.provenance.insert(k.clone(), v.clone());
        }
    }

    /// Functions currently known to block.
    pub fn blocking_functions(&self) -> Vec<String> {
        self.functions
            .iter()
            .filter(|(_, f)| f.may_block)
            .map(|(n, _)| n.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_blockstop::BlockStop;
    use ivy_cmir::parser::parse_program;

    const SRC: &str = r#"
        struct sk_buff { len: u32; data: u8 * count(len); }
        #[blocking]
        fn msleep_kc(ms: u32) { }
        #[subsystem("net/ipv4")] #[error_codes(-12)]
        fn xmit(skb: struct sk_buff * nonnull) -> i32 { msleep_kc(1); return 0; }
    "#;

    #[test]
    fn harvest_round_trips_through_json() {
        let p = parse_program(SRC).unwrap();
        let repo = Repository::from_program(&p);
        assert!(repo.types["sk_buff"].annotated);
        assert_eq!(repo.functions["xmit"].error_codes, vec![-12]);
        assert!(repo.functions["msleep_kc"].may_block);
        let json = repo.to_json();
        let back = Repository::from_json(&json).unwrap();
        assert_eq!(repo, back);
    }

    #[test]
    fn blockstop_results_are_absorbed() {
        let p = parse_program(SRC).unwrap();
        let mut repo = Repository::from_program(&p);
        assert!(!repo.functions["xmit"].may_block);
        let report = BlockStop::new().analyze(&p);
        repo.absorb_blockstop(&report);
        assert!(repo.functions["xmit"].may_block);
        assert!(repo.blocking_functions().contains(&"xmit".to_string()));
    }

    #[test]
    fn merge_joins_blocking_knowledge() {
        let p = parse_program(SRC).unwrap();
        let mut a = Repository::from_program(&p);
        a.functions.get_mut("xmit").unwrap().may_block = true;
        let b = Repository::from_program(&p);
        a.merge(&b);
        assert!(
            a.functions["xmit"].may_block,
            "merge must not lose may-block facts"
        );
    }
}
