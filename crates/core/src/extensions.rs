//! The future analyses sketched in §3.1, built on the same substrate:
//! lock-safety checking, stack-depth bounding, and error-code checking.

use ivy_analysis::callgraph::CallGraph;
use ivy_analysis::pointsto::{analyze as pointsto, Sensitivity};
use ivy_cmir::ast::{Expr, Program, Stmt};
use ivy_cmir::visit;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Lock safety
// ---------------------------------------------------------------------------

/// Result of the lock-safety analysis: consistent lock ordering plus the
/// Linux-specific rule that a lock taken in interrupt context must always be
/// taken with interrupts disabled in process context.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LockReport {
    /// Observed "outer held while inner acquired" pairs.
    pub order_pairs: BTreeSet<(String, String)>,
    /// Pairs that also occur reversed somewhere (potential deadlock).
    pub order_violations: Vec<(String, String)>,
    /// Locks acquired in interrupt context.
    pub irq_context_locks: BTreeSet<String>,
    /// Locks acquired in process context without disabling interrupts even
    /// though they are also taken in interrupt context (deadlock against an
    /// interrupt on the same CPU).
    pub irq_unsafe_acquisitions: Vec<(String, String)>,
    /// Call sites where static reasoning was not possible and a run-time
    /// check would be inserted.
    pub runtime_checks_needed: u64,
}

/// Runs the lock-safety analysis.
pub fn lockcheck(program: &Program) -> LockReport {
    let mut report = LockReport::default();
    // Per function: the sequence of (lock name, irqsave?, acquire/release).
    for func in program.functions.iter().filter(|f| f.body.is_some()) {
        let mut held: Vec<(String, bool)> = Vec::new();
        visit::walk_fn_stmts(func, &mut |stmt| {
            visit::walk_stmt_exprs(stmt, &mut |e| {
                let Expr::Call(callee, args) = e else { return };
                let Expr::Var(name) = &**callee else { return };
                let lock = args
                    .first()
                    .map(lock_label)
                    .unwrap_or_else(|| "<unknown>".into());
                match name.as_str() {
                    "spin_lock" | "spin_lock_bh" => {
                        for (outer, _) in &held {
                            report.order_pairs.insert((outer.clone(), lock.clone()));
                        }
                        if func.attrs.interrupt_handler {
                            report.irq_context_locks.insert(lock.clone());
                        }
                        held.push((lock, false));
                    }
                    "spin_lock_irqsave" | "spin_lock_irq" => {
                        for (outer, _) in &held {
                            report.order_pairs.insert((outer.clone(), lock.clone()));
                        }
                        if func.attrs.interrupt_handler {
                            report.irq_context_locks.insert(lock.clone());
                        }
                        held.push((lock, true));
                    }
                    "spin_unlock"
                    | "spin_unlock_bh"
                    | "spin_unlock_irqrestore"
                    | "spin_unlock_irq" => {
                        if let Some(pos) = held.iter().rposition(|(l, _)| *l == lock) {
                            held.remove(pos);
                        } else {
                            report.runtime_checks_needed += 1;
                        }
                    }
                    _ => {}
                }
            });
        });
        if !held.is_empty() {
            // Lock held at end of a walk (e.g. acquired in one branch only):
            // static reasoning is conservative, defer to a run-time check.
            report.runtime_checks_needed += held.len() as u64;
        }
    }
    // Ordering violations: pair (a, b) and (b, a) both observed.
    for (a, b) in &report.order_pairs {
        if a != b && report.order_pairs.contains(&(b.clone(), a.clone())) {
            report.order_violations.push((a.clone(), b.clone()));
        }
    }
    // IRQ-safety: a lock taken in interrupt context must be taken with
    // interrupts disabled everywhere else.
    for func in program.functions.iter().filter(|f| f.body.is_some()) {
        if func.attrs.interrupt_handler {
            continue;
        }
        visit::walk_fn_stmts(func, &mut |stmt| {
            visit::walk_stmt_exprs(stmt, &mut |e| {
                let Expr::Call(callee, args) = e else { return };
                let Expr::Var(name) = &**callee else { return };
                if name == "spin_lock" || name == "spin_lock_bh" {
                    let lock = args.first().map(lock_label).unwrap_or_default();
                    if report.irq_context_locks.contains(&lock) {
                        report
                            .irq_unsafe_acquisitions
                            .push((func.name.clone(), lock));
                    }
                }
            });
        });
    }
    report
}

fn lock_label(e: &Expr) -> String {
    match e {
        Expr::AddrOf(inner) => ivy_cmir::pretty::expr_str(inner),
        other => ivy_cmir::pretty::expr_str(other),
    }
}

// ---------------------------------------------------------------------------
// Stack-depth bounding
// ---------------------------------------------------------------------------

/// Result of the stack-depth analysis (the Capriccio-style bound of §3.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StackReport {
    /// Worst-case stack bytes per analysed entry point.
    pub per_entry: BTreeMap<String, u64>,
    /// Entry points that exceed the budget.
    pub over_budget: Vec<String>,
    /// Recursive functions, which need run-time checks instead of a static
    /// bound.
    pub recursive: BTreeSet<String>,
    /// The stack budget used (bytes).
    pub budget: u64,
}

/// Estimated frame size of a function: saved registers plus parameters and
/// locals (all memory-backed in the VM's model).
fn frame_size(program: &Program, name: &str) -> u64 {
    let Some(f) = program.function(name) else {
        return 32;
    };
    let mut locals = 0u64;
    if let Some(body) = &f.body {
        visit::walk_block_stmts(body, &mut |s| {
            if matches!(s, Stmt::Local(..)) {
                locals += 1;
            }
        });
    }
    32 + 8 * f.params.len() as u64 + 16 * locals
}

/// Runs the stack-depth analysis over every syscall-like and interrupt entry
/// point against a budget (4 or 8 kB in the paper).
pub fn stackcheck(program: &Program, budget: u64) -> StackReport {
    let pts = pointsto(program, Sensitivity::AndersenField);
    let cg = CallGraph::build(program, &pts);
    let mut report = StackReport {
        budget,
        recursive: cg.recursive_functions(),
        ..Default::default()
    };
    let entries: Vec<String> = program
        .functions
        .iter()
        .filter(|f| {
            f.body.is_some()
                && (f.name.starts_with("sys_")
                    || f.name.starts_with("wl_")
                    || f.name.starts_with("kernel_")
                    || f.attrs.interrupt_handler)
        })
        .map(|f| f.name.clone())
        .collect();
    for entry in entries {
        let depth = cg.max_weighted_depth(&entry, &|f| frame_size(program, f));
        if depth > budget {
            report.over_budget.push(entry.clone());
        }
        report.per_entry.insert(entry, depth);
    }
    report
}

// ---------------------------------------------------------------------------
// Error-code checking
// ---------------------------------------------------------------------------

/// Result of the error-code analysis: call sites of functions that can
/// return error codes, split into checked and unchecked uses.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ErrReport {
    /// Functions that may return an error code (negative constant or
    /// `#[error_codes]` annotation), with the codes.
    pub error_returning: BTreeMap<String, BTreeSet<i64>>,
    /// Call sites whose result is consumed (assigned, compared, returned).
    pub checked_sites: u64,
    /// Call sites whose result is silently discarded.
    pub unchecked_sites: Vec<(String, String)>,
}

/// Runs the error-code analysis.
pub fn errcheck(program: &Program) -> ErrReport {
    let mut report = ErrReport::default();
    // Which functions can return error codes?
    for f in program.functions.iter() {
        let mut codes: BTreeSet<i64> = f.attrs.error_codes.iter().copied().collect();
        if let Some(body) = &f.body {
            visit::walk_block_stmts(body, &mut |s| {
                if let Stmt::Return(Some(Expr::Int(v)), _) = s {
                    if *v < 0 {
                        codes.insert(*v);
                    }
                }
            });
        }
        if !codes.is_empty() {
            report.error_returning.insert(f.name.clone(), codes);
        }
    }
    // Classify call sites.
    for f in program.functions.iter().filter(|f| f.body.is_some()) {
        visit::walk_fn_stmts(f, &mut |stmt| match stmt {
            // A bare expression statement that is exactly a call to an
            // error-returning function discards the result.
            Stmt::Expr(Expr::Call(callee, _), _) => {
                if let Expr::Var(name) = &**callee {
                    if report.error_returning.contains_key(name) {
                        report.unchecked_sites.push((f.name.clone(), name.clone()));
                    }
                }
            }
            _ => {
                visit::walk_stmt_exprs(stmt, &mut |e| {
                    if let Expr::Call(callee, _) = e {
                        if let Expr::Var(name) = &**callee {
                            if report.error_returning.contains_key(name) {
                                report.checked_sites += 1;
                            }
                        }
                    }
                });
            }
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const SRC: &str = r#"
        extern fn spin_lock(l: u32 *);
        extern fn spin_unlock(l: u32 *);
        extern fn spin_lock_irqsave(l: u32 *);
        extern fn spin_unlock_irqrestore(l: u32 *);
        global lock_a: u32 = 0;
        global lock_b: u32 = 0;

        fn ab() {
            spin_lock(&lock_a);
            spin_lock(&lock_b);
            spin_unlock(&lock_b);
            spin_unlock(&lock_a);
        }
        fn ba() {
            spin_lock(&lock_b);
            spin_lock(&lock_a);
            spin_unlock(&lock_a);
            spin_unlock(&lock_b);
        }
        #[irq_handler]
        fn irq() {
            spin_lock(&lock_a);
            spin_unlock(&lock_a);
        }

        #[error_codes(-12)]
        fn may_fail(x: u32) -> i32 {
            if (x == 0) { return -22; }
            return 0;
        }
        fn careless() { may_fail(0); }
        fn careful() -> i32 {
            let r: i32 = may_fail(1);
            if (r < 0) { return r; }
            return 0;
        }

        fn leaf(x: u32) -> u32 { return x + 1; }
        fn mid(x: u32) -> u32 { let y: u32 = leaf(x); return y; }
        fn sys_deep(x: u32) -> u32 { let a: u32 = mid(x); return a; }
        fn looper(n: u32) -> u32 { if (n == 0) { return 0; } return looper(n - 1); }
        fn sys_rec(n: u32) -> u32 { return looper(n); }
    "#;

    #[test]
    fn lock_order_violation_detected() {
        let p = parse_program(SRC).unwrap();
        let r = lockcheck(&p);
        assert!(!r.order_violations.is_empty());
        assert!(r.irq_context_locks.contains("lock_a"));
        // `ab` and `ba` take lock_a/lock_b in process context without
        // disabling interrupts although lock_a is also taken in an interrupt
        // handler.
        assert!(r
            .irq_unsafe_acquisitions
            .iter()
            .any(|(f, l)| f == "ab" && l == "lock_a"));
    }

    #[test]
    fn stack_bound_and_recursion() {
        let p = parse_program(SRC).unwrap();
        let r = stackcheck(&p, 8192);
        assert!(r.per_entry.contains_key("sys_deep"));
        assert!(
            r.per_entry["sys_deep"] > r.per_entry["sys_rec"] / 10,
            "sane magnitudes"
        );
        assert!(r.recursive.contains("looper"));
        assert!(r.over_budget.is_empty());
        let tight = stackcheck(&p, 64);
        assert!(!tight.over_budget.is_empty());
    }

    #[test]
    fn error_codes_checked_vs_discarded() {
        let p = parse_program(SRC).unwrap();
        let r = errcheck(&p);
        assert!(r.error_returning["may_fail"].contains(&-22));
        assert!(r.error_returning["may_fail"].contains(&-12));
        assert_eq!(
            r.unchecked_sites,
            vec![("careless".to_string(), "may_fail".to_string())]
        );
        assert!(r.checked_sites >= 1);
    }
}
