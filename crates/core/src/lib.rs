//! `ivy-core` — the unified Ivy driver: pipeline, experiment harness,
//! annotation repository, and the §3.1 extension analyses.
//!
//! The paper's thesis is that *sound* analyses — Deputy, CCount, BlockStop —
//! can be applied together to a whole kernel with modest effort. This crate
//! is where the three tools meet:
//!
//! * [`pipeline`] — applies all three tools to a kernel in one pass via
//!   `ivy-engine` (shared analysis context, parallel scheduling,
//!   incremental cache), producing a "hardened" program plus the combined
//!   reports.
//! * [`experiments`] — one function per table/experiment of the paper
//!   (Table 1, annotation burden, free verification, CCount overhead,
//!   BlockStop findings, the points-to ablation, and the extension
//!   analyses).
//! * [`repository`] — the shared annotation repository of §3.2.
//! * [`extensions`] — lock safety, stack-depth bounding, and error-code
//!   checking (§3.1).
//!
//! # Examples
//!
//! ```
//! use ivy_core::pipeline::Pipeline;
//! use ivy_kernelgen::{KernelBuild, KernelConfig};
//!
//! let build = KernelBuild::generate(&KernelConfig::small());
//! let hardened = Pipeline::new().run(&build);
//! assert!(hardened.deputy.accepted());
//! // The run-time assertions silence the false positives; only the findings
//! // for the seeded real bugs remain.
//! assert!(hardened.blockstop_after.findings.len() < hardened.blockstop_before.findings.len());
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod extensions;
pub mod pipeline;
pub mod repository;

pub use experiments::Scale;
pub use pipeline::{Hardened, Pipeline};
pub use repository::Repository;
