//! The combined Ivy pipeline: Deputy + CCount + BlockStop over one kernel,
//! driven by `ivy-engine`.
//!
//! This is the workflow §2 describes end to end: deputize the kernel
//! (annotations + run-time checks), apply the source fixes that make its
//! frees verifiable, insert the BlockStop assertions that silence false
//! positives, and hand back a program that can be executed fully
//! instrumented on the VM.
//!
//! Since the engine rework, all three tools run as [`Checker`] plugins over
//! shared, memoized [`AnalysisCtx`]s: points-to results and call graphs are
//! computed once per program state instead of once per tool, checker work is
//! scheduled bottom-up over the condensed call graph in parallel, and the
//! pipeline's three program states (fixed → asserted → deputized) share one
//! diagnostic cache and one context store — so running the same pipeline
//! again (the analyze→fix→re-analyze loop) is served from cache instead of
//! paying full price twice.

use crate::experiments::fix_plan_for;
use crate::repository::Repository;
use ivy_analysis::pointsto::ConstraintCache;
use ivy_blockstop::{insert_asserts, BlockStopChecker, BlockStopConfig, BlockStopReport};
use ivy_ccount::{CCountChecker, InstrumentationReport};
use ivy_cmir::ast::Program;
use ivy_deputy::plugin::DeputyChecker;
use ivy_deputy::{ConversionReport, Deputy};
use ivy_engine::{CtxStore, Diagnostic, DiagnosticCache, Engine, PersistLayer, Report};
use ivy_kernelgen::KernelBuild;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Configuration of the combined pipeline.
pub struct Pipeline {
    /// The Deputy instance used for conversion.
    pub deputy: Deputy,
    /// Worker threads for the engine (0 = one per hardware thread).
    pub threads: usize,
    /// Record derivation provenance during every points-to solve, so
    /// `PointsToResult::why` can explain any fact the hardened report
    /// rests on. Costs memory and (bounded) time; off by default.
    pub provenance: bool,
    cache: Arc<DiagnosticCache>,
    ctx_store: Arc<CtxStore>,
    pts_cache: Arc<ConstraintCache>,
    persist: Option<Arc<PersistLayer>>,
    daemon: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            deputy: Deputy::default(),
            threads: 0,
            provenance: false,
            cache: Arc::new(DiagnosticCache::new()),
            ctx_store: Arc::new(CtxStore::new()),
            pts_cache: Arc::new(ConstraintCache::new()),
            persist: None,
            daemon: None,
            trace_out: None,
        }
    }
}

impl Clone for Pipeline {
    /// Clones share the diagnostic cache, context store, points-to
    /// constraint cache, and persist layer, so a cloned pipeline benefits
    /// from the original's warm state.
    fn clone(&self) -> Self {
        Pipeline {
            deputy: self.deputy.clone(),
            threads: self.threads,
            provenance: self.provenance,
            cache: Arc::clone(&self.cache),
            ctx_store: Arc::clone(&self.ctx_store),
            pts_cache: Arc::clone(&self.pts_cache),
            persist: self.persist.clone(),
            daemon: self.daemon.clone(),
            trace_out: self.trace_out.clone(),
        }
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("deputy", &self.deputy)
            .field("threads", &self.threads)
            .field("cached_results", &self.cache.len())
            .finish()
    }
}

/// Output of the combined pipeline.
#[derive(Debug, Clone)]
pub struct Hardened {
    /// The fully hardened program: deputized, free-fix plan applied,
    /// BlockStop assertions inserted.
    pub program: Program,
    /// Deputy conversion report.
    pub deputy: ConversionReport,
    /// CCount static instrumentation report.
    pub ccount: InstrumentationReport,
    /// BlockStop report on the original kernel (before assertions).
    pub blockstop_before: BlockStopReport,
    /// BlockStop report after run-time assertions are accounted for.
    pub blockstop_after: BlockStopReport,
    /// Number of BlockStop assertions inserted.
    pub asserts_inserted: u64,
    /// The annotation repository harvested from the hardened kernel.
    pub repository: Repository,
    /// The unified engine report over the hardened kernel: BlockStop and
    /// Deputy diagnostics for the asserted program plus CCount diagnostics
    /// for the deputized program, in stable order.
    pub report: Report,
}

impl Pipeline {
    /// Creates a pipeline with default tool configurations.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Creates a pipeline with an engine thread count.
    pub fn with_threads(threads: usize) -> Self {
        Pipeline {
            threads,
            ..Pipeline::default()
        }
    }

    /// Attaches a cross-process persist layer (builder style): all engine
    /// stages spill per-function diagnostics and durable query results to
    /// it, so a separate process running the same pipeline starts warm.
    pub fn with_persist(mut self, persist: Arc<PersistLayer>) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Daemon-backed mode (builder style): point the pipeline at a
    /// resident [`ivy_daemon`] socket. [`Pipeline::recheck`] then routes
    /// re-analysis round-trips through the daemon — which keeps points-to,
    /// query, and diagnostic state alive across processes — and falls back
    /// to the in-process engine when the socket is dead. The daemon serves
    /// the default checker fleet, so answers are byte-identical either
    /// way.
    pub fn with_daemon(mut self, socket: impl Into<PathBuf>) -> Self {
        self.daemon = Some(socket.into());
        self
    }

    /// Enables span recording and exports a Chrome trace-event JSON file
    /// to `path` when [`Pipeline::run`] finishes (builder style). The
    /// trace covers the pipeline's phase spans plus everything the engine
    /// and solver record underneath them; open it in about://tracing or
    /// Perfetto.
    pub fn with_trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        ivy_telemetry::enable_spans();
        self.trace_out = Some(path.into());
        self
    }

    /// Records derivation provenance during every engine stage (builder
    /// style) — the pipeline face of the engine's `--provenance` switch.
    /// Diagnostics stay byte-identical to a provenance-free run; the
    /// recorded arena sizes surface in `report.stats.provenance_facts` /
    /// `provenance_bytes`, and any fact of the final solve can then be
    /// expanded into a derivation chain (`ivy-client explain` against a
    /// daemon started with `--provenance` does the same for resident
    /// state).
    pub fn with_provenance(mut self, on: bool) -> Self {
        self.provenance = on;
        self
    }

    /// One analyze round-trip against a resident daemon, decoded back into
    /// an engine [`Report`]. The daemon's `diagnostics_json` is the stable
    /// serialization, so the decoded report reproduces it byte-identically.
    pub fn daemon_analyze(socket: &Path, program: &Program) -> io::Result<Report> {
        let mut client = ivy_daemon::Client::connect(socket)?;
        let outcome = client.analyze(&ivy_cmir::pretty::pretty_program(program))?;
        let parsed = ivy_engine::json::from_str(&outcome.diagnostics_json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let diagnostics: Vec<Diagnostic> = parsed
            .as_array()
            .and_then(|items| items.iter().map(Diagnostic::from_value).collect())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "undecodable daemon diagnostics")
            })?;
        Ok(Report::new(diagnostics, outcome.stats))
    }

    /// Re-checks one program state — the analyze half of the
    /// analyze→fix→re-analyze loop. With a daemon configured (see
    /// [`Pipeline::with_daemon`]) and reachable, the round-trip is served
    /// by the resident engine; otherwise an in-process engine pass runs.
    /// Both paths produce byte-identical stable serializations.
    ///
    /// The daemon always serves the *default* checker configurations (the
    /// protocol carries no config yet — see the ROADMAP item), so a
    /// pipeline with a non-default Deputy config never routes to it:
    /// answers must come from the configuration the caller asked for, not
    /// whichever happens to be resident.
    pub fn recheck(&self, program: &Program) -> Report {
        let default_config = self.deputy.config == Deputy::default().config;
        if let (Some(socket), true) = (&self.daemon, default_config) {
            if let Ok(report) = Self::daemon_analyze(socket, program) {
                return report;
            }
        }
        let mut engine = self.engine();
        for checker in ivy_daemon::fleet_checkers(self.deputy.config) {
            engine = engine.with_checker(checker);
        }
        engine.analyze(program)
    }

    /// The diagnostic cache shared by this pipeline's engine stages; expose
    /// it to observe hit rates across repeated runs.
    pub fn cache(&self) -> Arc<DiagnosticCache> {
        Arc::clone(&self.cache)
    }

    fn engine(&self) -> Engine {
        // All three stages share one points-to constraint cache: the
        // pipeline's program states (fixed → asserted → deputized) share
        // almost all function bodies, so each state regenerates constraints
        // only for the functions the previous stage actually rewrote.
        let engine = Engine::new()
            .with_threads(self.threads)
            .with_provenance(self.provenance)
            .with_cache(Arc::clone(&self.cache))
            .with_ctx_store(Arc::clone(&self.ctx_store))
            .with_pointsto_cache(Arc::clone(&self.pts_cache));
        match &self.persist {
            Some(layer) => engine.with_persist(Arc::clone(layer)),
            None => engine,
        }
    }

    /// Runs the whole pipeline over a generated kernel.
    pub fn run(&self, build: &KernelBuild) -> Hardened {
        let run_span = ivy_telemetry::span("pipeline/run", "harden");

        // 1. CCount source fixes (null-outs + delayed-free scopes).
        let fixed = ivy_telemetry::time("pipeline/phase", "fix", || {
            let plan = fix_plan_for(build);
            plan.apply(&build.program)
        });

        // 2. BlockStop on the fixed kernel, over a shared analysis context.
        //    Only the whole-program report is needed at this stage (it is
        //    compared against the post-assert report, not merged into the
        //    unified diagnostics), so no per-function engine pass runs here.
        let blockstop_before = ivy_telemetry::time("pipeline/phase", "blockstop-pre", || {
            let pre_checker = BlockStopChecker::new();
            let pre_engine = self.engine();
            let (pre_ctx, _) = pre_engine.context_for(&fixed);
            (*pre_checker.report(&pre_ctx)).clone()
        });

        // 3. Insert the assertions that silence the corpus's known false
        //    positives and re-analyse; Deputy checks the same program state
        //    in the same engine pass, over the same AnalysisCtx.
        let instrument_span = ivy_telemetry::span("pipeline/phase", "instrument");
        let asserted = build.asserted_functions();
        let (with_asserts, asserts_inserted) = insert_asserts(&fixed, &asserted);
        drop(instrument_span);
        let analyze_span = ivy_telemetry::span("pipeline/phase", "analyze");
        let post_checker = Arc::new(BlockStopChecker::with_config(BlockStopConfig {
            asserted_functions: asserted,
            ..BlockStopConfig::default()
        }));
        let deputy_checker = Arc::new(DeputyChecker::with_config(self.deputy.config));
        let post_engine = self
            .engine()
            .with_checker(post_checker.clone())
            .with_checker(deputy_checker.clone());
        let (post_ctx, post_reused) = post_engine.context_for(&with_asserts);
        let post_report = post_engine.analyze_with_ctx(&post_ctx, post_reused);
        let blockstop_after = (*post_checker.report(&post_ctx)).clone();
        drop(analyze_span);

        // 4. Deputy conversion of the patched kernel (the program
        //    transformation; diagnostics already came from the engine
        //    pass). Assembled from the per-function instrumentations the
        //    checker just memoized — keyed by deputy config — so neither a
        //    cold nor a repeated pipeline run instruments twice.
        let conversion = ivy_telemetry::time("pipeline/phase", "deputize", || {
            (*deputy_checker.conversion(&post_ctx)).clone()
        });

        // 5. CCount static report on the deputized kernel, and the shared
        //    repository.
        let ccount_span = ivy_telemetry::span("pipeline/phase", "ccount");
        let ccount_checker = Arc::new(CCountChecker::new());
        let final_engine = self.engine().with_checker(ccount_checker.clone());
        let (final_ctx, final_reused) = final_engine.context_for(&conversion.program);
        let final_report = final_engine.analyze_with_ctx(&final_ctx, final_reused);
        let ccount = (*ccount_checker.report(&final_ctx)).clone();
        drop(ccount_span);

        let report_span = ivy_telemetry::span("pipeline/phase", "report");
        let mut repository = Repository::from_program(&conversion.program);
        repository.absorb_blockstop(&blockstop_after);

        // 6. Merge the engine reports of the hardened states into one.
        let mut diagnostics: Vec<Diagnostic> = post_report.diagnostics.clone();
        diagnostics.extend(final_report.diagnostics.iter().cloned());
        let mut stats = post_report.stats.clone();
        stats.cache_hits += final_report.stats.cache_hits;
        stats.cache_misses += final_report.stats.cache_misses;
        stats.persist_hits += final_report.stats.persist_hits;
        stats.persist_misses += final_report.stats.persist_misses;
        let report = Report::new(diagnostics, stats);
        drop(report_span);
        drop(run_span);

        if let Some(path) = &self.trace_out {
            if let Err(err) = ivy_telemetry::write_chrome_trace(path) {
                eprintln!("ivy-core: trace export to {} failed: {err}", path.display());
            }
        }

        Hardened {
            program: conversion.program,
            deputy: conversion.report,
            ccount,
            blockstop_before,
            blockstop_after,
            asserts_inserted,
            repository,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::pretty::pretty_program;
    use ivy_kernelgen::{KernelBuild, KernelConfig};
    use ivy_vm::{Value, Vm, VmConfig};

    #[test]
    fn pipeline_produces_clean_hardened_kernel() {
        let build = KernelBuild::generate(&KernelConfig::small());
        let hardened = Pipeline::new().run(&build);
        assert!(
            hardened.deputy.accepted(),
            "{:?}",
            hardened.deputy.diagnostics
        );
        assert!(hardened.deputy.total_runtime_checks() > 0);
        assert!(hardened.ccount.counted_pointer_writes > 0);
        assert!(!hardened.blockstop_before.findings.is_empty());
        // Only the two seeded real bugs remain after assertions.
        assert!(hardened.blockstop_after.findings.len() < hardened.blockstop_before.findings.len());
        assert!(hardened.asserts_inserted > 0);
        assert!(hardened.repository.blocking_functions().len() > 2);
    }

    #[test]
    fn hardened_kernel_boots_fully_instrumented() {
        let config = KernelConfig::small();
        let build = KernelBuild::generate(&config);
        let hardened = Pipeline::new().run(&build);
        let mut vm = Vm::new(hardened.program.clone(), VmConfig::full(false)).unwrap();
        vm.run(
            "kernel_boot",
            vec![Value::Int(i64::from(config.boot_cycles)), Value::Int(0)],
        )
        .unwrap();
        // All frees verify good on the fixed kernel, no Deputy check fails,
        // and no BlockStop assertion fires.
        assert_eq!(vm.stats.frees_bad, 0, "bad frees: {:?}", vm.stats.bad_frees);
        assert!(vm.stats.frees_good > 0);
        assert!(
            vm.stats.check_failures.is_empty(),
            "{:?}",
            vm.stats.check_failures
        );
        assert_eq!(vm.stats.assert_failures, 0);
        // The seeded blocking bugs are still present (they are real bugs the
        // tool reports rather than fixes).
        assert!(!vm.stats.blocking_violations.is_empty());
    }

    #[test]
    fn unified_report_carries_all_three_checkers() {
        let build = KernelBuild::generate(&KernelConfig::small());
        let hardened = Pipeline::new().run(&build);
        assert!(!hardened.report.by_checker("blockstop").is_empty());
        assert!(!hardened.report.by_checker("deputy").is_empty());
        assert!(!hardened.report.by_checker("ccount").is_empty());
        // BlockStop engine diagnostics agree with the native report.
        let blockstop_errors = hardened
            .report
            .by_checker("blockstop")
            .iter()
            .filter(|d| d.severity == ivy_engine::Severity::Error)
            .count();
        assert_eq!(blockstop_errors, hardened.blockstop_after.findings.len());
    }

    #[test]
    fn separate_pipeline_processes_share_the_persist_layer() {
        let build = KernelBuild::generate(&KernelConfig::small());
        let dir = std::env::temp_dir().join(format!("ivy-pipeline-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // "Process A": cold pipeline, spills to the persist directory.
        let first = Pipeline::new()
            .with_persist(Arc::new(PersistLayer::open(&dir).unwrap()))
            .run(&build);

        // "Process B": every in-memory cache is fresh; only the directory
        // is shared. Deputization and checking are served from disk.
        let second = Pipeline::new()
            .with_persist(Arc::new(PersistLayer::open(&dir).unwrap()))
            .run(&build);
        assert_eq!(first.report.diagnostics, second.report.diagnostics);
        assert_eq!(
            first.report.diagnostics_json(),
            second.report.diagnostics_json()
        );
        // The hardened programs are textually identical (AST spans may
        // differ: reloaded instrumented bodies carry spans from their
        // pretty-printed persisted form, which never affect semantics,
        // hashing, or serialized output).
        assert_eq!(
            ivy_cmir::pretty::pretty_program(&first.program),
            ivy_cmir::pretty::pretty_program(&second.program)
        );
        assert!(
            second.report.stats.persist_hits > 0,
            "warm pipeline process must be served from the persist layer: {:?}",
            second.report.stats
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_backed_recheck_matches_the_in_process_engine() {
        let build = KernelBuild::generate(&KernelConfig::small());
        // Canonical program text: the daemon parses source, so compare
        // both paths over the same parsed form.
        let source = ivy_cmir::pretty::pretty_program(&build.program);
        let program = ivy_cmir::parser::parse_program(&source).unwrap();

        let socket =
            std::env::temp_dir().join(format!("ivy-pipeline-daemon-{}.sock", std::process::id()));
        let handle = ivy_daemon::Daemon::spawn(ivy_daemon::DaemonConfig::new(&socket)).unwrap();

        let local = Pipeline::new().recheck(&program);
        let via_daemon = Pipeline::new().with_daemon(&socket).recheck(&program);
        assert!(!via_daemon.diagnostics.is_empty());
        assert_eq!(local.diagnostics, via_daemon.diagnostics);
        assert_eq!(local.diagnostics_json(), via_daemon.diagnostics_json());

        // A dead socket falls back to the in-process engine, not an error.
        ivy_daemon::Client::connect(&socket)
            .unwrap()
            .shutdown()
            .unwrap();
        handle.join();
        let fallback = Pipeline::new().with_daemon(&socket).recheck(&program);
        assert_eq!(local.diagnostics_json(), fallback.diagnostics_json());
    }

    #[test]
    fn provenance_pipeline_matches_plain_run_and_surfaces_arena_stats() {
        let build = KernelBuild::generate(&KernelConfig::small());
        let plain = Pipeline::new().run(&build);
        let explained = Pipeline::new().with_provenance(true).run(&build);
        // Recording derivations may never change any answer.
        assert_eq!(
            plain.report.diagnostics_json(),
            explained.report.diagnostics_json()
        );
        assert_eq!(
            pretty_program(&plain.program),
            pretty_program(&explained.program)
        );
        // ...but the arena it recorded is visible in the stats.
        assert_eq!(plain.report.stats.provenance_facts, 0);
        assert!(explained.report.stats.provenance_facts > 0);
        assert!(explained.report.stats.provenance_bytes > 0);
    }

    #[test]
    fn repeated_pipeline_runs_are_served_from_cache() {
        let build = KernelBuild::generate(&KernelConfig::small());
        let pipeline = Pipeline::new();
        let first = pipeline.run(&build);
        let hits_before = pipeline.cache().hits();
        let second = pipeline.run(&build);
        assert_eq!(first.report.diagnostics, second.report.diagnostics);
        assert!(
            second.report.stats.ctx_reused,
            "identical program reuses the context"
        );
        assert_eq!(
            second.report.stats.cache_misses, 0,
            "an unchanged kernel must be fully cache-served"
        );
        assert!(pipeline.cache().hits() > hits_before);
    }
}
