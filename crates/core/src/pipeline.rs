//! The combined Ivy pipeline: Deputy + CCount + BlockStop over one kernel.
//!
//! This is the workflow §2 describes end to end: deputize the kernel
//! (annotations + run-time checks), apply the source fixes that make its
//! frees verifiable, insert the BlockStop assertions that silence false
//! positives, and hand back a program that can be executed fully
//! instrumented on the VM.

use crate::experiments::fix_plan_for;
use crate::repository::Repository;
use ivy_blockstop::{insert_asserts, BlockStop, BlockStopConfig, BlockStopReport};
use ivy_ccount::{analyze as ccount_analyze, InstrumentationReport};
use ivy_cmir::ast::Program;
use ivy_deputy::{ConversionReport, Deputy};
use ivy_kernelgen::KernelBuild;

/// Configuration of the combined pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// The Deputy instance used for conversion.
    pub deputy: Deputy,
}

/// Output of the combined pipeline.
#[derive(Debug, Clone)]
pub struct Hardened {
    /// The fully hardened program: deputized, free-fix plan applied,
    /// BlockStop assertions inserted.
    pub program: Program,
    /// Deputy conversion report.
    pub deputy: ConversionReport,
    /// CCount static instrumentation report.
    pub ccount: InstrumentationReport,
    /// BlockStop report on the original kernel (before assertions).
    pub blockstop_before: BlockStopReport,
    /// BlockStop report after run-time assertions are accounted for.
    pub blockstop_after: BlockStopReport,
    /// Number of BlockStop assertions inserted.
    pub asserts_inserted: u64,
    /// The annotation repository harvested from the hardened kernel.
    pub repository: Repository,
}

impl Pipeline {
    /// Creates a pipeline with default tool configurations.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Runs the whole pipeline over a generated kernel.
    pub fn run(&self, build: &KernelBuild) -> Hardened {
        // 1. CCount source fixes (null-outs + delayed-free scopes).
        let plan = fix_plan_for(build);
        let fixed = plan.apply(&build.program);

        // 2. BlockStop: analyse, then insert the assertions that silence the
        //    corpus's known false positives and re-analyse.
        let blockstop_before = BlockStop::new().analyze(&fixed);
        let asserted = build.asserted_functions();
        let (with_asserts, asserts_inserted) = insert_asserts(&fixed, &asserted);
        let blockstop_after = BlockStop::with_config(BlockStopConfig {
            asserted_functions: asserted,
            ..BlockStopConfig::default()
        })
        .analyze(&with_asserts);

        // 3. Deputy conversion of the patched kernel.
        let conversion = self.deputy.convert(&with_asserts);

        // 4. CCount static report and the shared repository.
        let ccount = ccount_analyze(&conversion.program);
        let mut repository = Repository::from_program(&conversion.program);
        repository.absorb_blockstop(&blockstop_after);

        Hardened {
            program: conversion.program,
            deputy: conversion.report,
            ccount,
            blockstop_before,
            blockstop_after,
            asserts_inserted,
            repository,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_kernelgen::{KernelBuild, KernelConfig};
    use ivy_vm::{Value, Vm, VmConfig};

    #[test]
    fn pipeline_produces_clean_hardened_kernel() {
        let build = KernelBuild::generate(&KernelConfig::small());
        let hardened = Pipeline::new().run(&build);
        assert!(hardened.deputy.accepted(), "{:?}", hardened.deputy.diagnostics);
        assert!(hardened.deputy.total_runtime_checks() > 0);
        assert!(hardened.ccount.counted_pointer_writes > 0);
        assert!(!hardened.blockstop_before.findings.is_empty());
        // Only the two seeded real bugs remain after assertions.
        assert!(hardened.blockstop_after.findings.len() < hardened.blockstop_before.findings.len());
        assert!(hardened.asserts_inserted > 0);
        assert!(hardened.repository.blocking_functions().len() > 2);
    }

    #[test]
    fn hardened_kernel_boots_fully_instrumented() {
        let config = KernelConfig::small();
        let build = KernelBuild::generate(&config);
        let hardened = Pipeline::new().run(&build);
        let mut vm = Vm::new(hardened.program.clone(), VmConfig::full(false)).unwrap();
        vm.run("kernel_boot", vec![Value::Int(i64::from(config.boot_cycles)), Value::Int(0)])
            .unwrap();
        // All frees verify good on the fixed kernel, no Deputy check fails,
        // and no BlockStop assertion fires.
        assert_eq!(vm.stats.frees_bad, 0, "bad frees: {:?}", vm.stats.bad_frees);
        assert!(vm.stats.frees_good > 0);
        assert!(vm.stats.check_failures.is_empty(), "{:?}", vm.stats.check_failures);
        assert_eq!(vm.stats.assert_failures, 0);
        // The seeded blocking bugs are still present (they are real bugs the
        // tool reports rather than fixes).
        assert!(!vm.stats.blocking_violations.is_empty());
    }
}
