//! The typed, demand-driven query subsystem.
//!
//! Everything an analysis can ask for — points-to results, call graphs,
//! summaries, CFGs, checker-owned precomputations — is a [`Query`]: a unit
//! type naming the artifact, a typed [`Query::Key`], a typed
//! [`Query::Value`], and a `compute` function that derives the value from
//! the [`QueryDb`] on first demand. The db memoizes per `(query type,
//! key)`, records dependency edges between queries as they demand each
//! other, and — for queries that opt into [`DurableQuery`] — spills results
//! to the cross-process [`PersistLayer`](crate::persist::PersistLayer) and
//! reloads them in later processes.
//!
//! This replaces the seed engine's string-keyed `Any` memo table
//! (`AnalysisCtx::memo`). That API had a panic class built in: two checkers
//! (or one checker in two places) using the same string key with different
//! types would `downcast` across types and panic at run time. Typed queries
//! make the confusion unrepresentable: the memo table is keyed by the
//! query's [`TypeId`], so even two query types with *identical* `NAME`
//! strings cannot alias each other's slots, and the value type is fixed by
//! the trait impl rather than inferred at the call site:
//!
//! ```compile_fail
//! use ivy_engine::query::{Query, QueryDb};
//! use ivy_engine::query::Summaries;
//! use ivy_analysis::pointsto::Sensitivity;
//! # use ivy_cmir::parser::parse_program;
//! let db = QueryDb::new(&parse_program("fn f() { }").unwrap());
//! // The old `ctx.memo::<String>("summaries/steensgaard", ...)` would have
//! // compiled and panicked at run time on the type confusion. The typed
//! // query API rejects the wrong value type at compile time:
//! let s: std::sync::Arc<String> = db.get::<Summaries>(&Sensitivity::Steensgaard);
//! ```

use crate::persist::PersistLayer;
use ivy_analysis::pointsto::{self, ConstraintCache, PointsToResult, Sensitivity, SolveOptions};
use ivy_analysis::summary::{self, fnv1a, mix, Condensation, FunctionSummary, ProgramSummaries};
use ivy_analysis::CallGraph;
use ivy_cmir::ast::Program;
use ivy_cmir::cfg::Cfg;
use ivy_cmir::content::function_content_hash;
use ivy_cmir::pretty::pretty_program;
use serde_json::{Map, Value};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A key a query can be demanded at.
///
/// `stable_hash` must be deterministic across processes (no `std::hash`
/// randomization) — it is the memo-slot index and, for [`DurableQuery`]
/// entries, part of the on-disk cache key. Keys whose durable results
/// depend on program *content* must fold the relevant content hashes in
/// (or the query must override [`DurableQuery::durable_key`]).
pub trait QueryKey: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Process-independent hash of the key.
    fn stable_hash(&self) -> u64;
}

impl QueryKey for () {
    fn stable_hash(&self) -> u64 {
        fnv1a(b"unit")
    }
}

impl QueryKey for u64 {
    fn stable_hash(&self) -> u64 {
        mix(fnv1a(b"u64"), *self)
    }
}

impl QueryKey for String {
    fn stable_hash(&self) -> u64 {
        fnv1a(self.as_bytes())
    }
}

impl QueryKey for Sensitivity {
    fn stable_hash(&self) -> u64 {
        fnv1a(self.name().as_bytes())
    }
}

impl<A: QueryKey, B: QueryKey> QueryKey for (A, B) {
    fn stable_hash(&self) -> u64 {
        mix(self.0.stable_hash(), self.1.stable_hash())
    }
}

impl<A: QueryKey, B: QueryKey, C: QueryKey> QueryKey for (A, B, C) {
    fn stable_hash(&self) -> u64 {
        mix(
            mix(self.0.stable_hash(), self.1.stable_hash()),
            self.2.stable_hash(),
        )
    }
}

/// A typed, memoized, demand-driven computation over a [`QueryDb`].
///
/// Implementors are unit types; the db computes `Q::compute(db, key)` at
/// most once per `(Q, key)` and shares the `Arc`'d result. `compute` may
/// demand other queries through the db — those reads are recorded as
/// dependency edges (see [`QueryDb::dependencies`]).
pub trait Query: 'static {
    /// Key type this query is demanded at.
    type Key: QueryKey;
    /// Result type.
    type Value: Send + Sync + 'static;
    /// Stable human-readable name (`"<owner>/<artifact>"` by convention).
    /// Used for dependency-edge reporting and as the persistence namespace;
    /// *not* used for memo addressing (the [`TypeId`] is), so two query
    /// types with colliding names still cannot alias.
    const NAME: &'static str;
    /// Computes the value for a key. Must be deterministic in `(db, key)`.
    fn compute(db: &QueryDb, key: &Self::Key) -> Self::Value;
}

/// A [`Query`] whose results additionally spill to the cross-process
/// [`PersistLayer`] (when one is attached to the db) and are reloaded from
/// disk in later processes instead of being recomputed.
pub trait DurableQuery: Query {
    /// Version of the encoded representation; bumping it invalidates every
    /// persisted entry of this query (old files are ignored, not read).
    const FORMAT_VERSION: u32;

    /// The on-disk cache key. Must be *content-addressed*: equal keys must
    /// guarantee equal results across processes and program states. The
    /// default is the key's stable hash; queries whose keys do not capture
    /// all inputs (e.g. whole-program artifacts keyed only by sensitivity)
    /// must override this to mix in the content hashes they depend on.
    fn durable_key(db: &QueryDb, key: &Self::Key) -> u64 {
        let _ = db;
        key.stable_hash()
    }

    /// Encodes a value for persistence.
    fn encode(value: &Self::Value) -> Value;

    /// Decodes a persisted value; `None` rejects the entry (it is then
    /// recomputed and overwritten).
    fn decode(raw: &Value) -> Option<Self::Value>;
}

/// A `(query name, key hash)` pair identifying one query instance in the
/// dependency graph.
pub type QueryRef = (&'static str, u64);

/// Recomputes a durable query instance's content-addressed key against an
/// arbitrary db. Stored with the memoized entry so invalidation can ask
/// "would this entry's on-disk key be the same for the edited program?" —
/// the durable contract (equal keys guarantee equal results) then lets a
/// dependency-reachable entry be *revalidated* instead of discarded.
type Revalidator = Arc<dyn Fn(&QueryDb) -> u64 + Send + Sync>;

/// One memoized result: the type-erased `(Q::Key, Arc<Q::Value>)` payload
/// plus, for durable queries, the durable key it was stored under and the
/// closure that recomputes that key.
struct SlotEntry {
    payload: Box<dyn Any + Send + Sync>,
    durable: Option<(u64, Revalidator)>,
    /// True when the value was adopted from the persist layer rather than
    /// computed: its compute never ran in this process, so it has no
    /// recorded dependency edges and [`QueryDb::apply_edit`] must judge it
    /// by its durable key alone.
    adopted: bool,
}

type Slot = Arc<Mutex<Vec<SlotEntry>>>;

thread_local! {
    /// Stack of queries currently computing on this thread; the top is the
    /// dependent of any query demanded next.
    static ACTIVE: RefCell<Vec<QueryRef>> = const { RefCell::new(Vec::new()) };
}

/// Pops the active-query stack even if `compute` unwinds.
struct ActiveGuard;

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// What one [`QueryDb::apply_edit`] invalidated and what it kept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvalidationStats {
    /// Functions whose span-insensitive content hash changed (including
    /// additions and removals), in sorted order.
    pub changed_functions: Vec<String>,
    /// Whether the whole-program type environment changed.
    pub env_changed: bool,
    /// Input-layer query instances seeded dirty.
    pub seeds: usize,
    /// Memoized results discarded (transitive dependents of the seeds).
    pub invalidated: usize,
    /// Memoized results carried into the new db.
    pub retained: usize,
    /// Dependency-reachable durable results kept because their
    /// content-addressed key is unchanged for the edited program.
    pub revalidated: usize,
}

impl InvalidationStats {
    /// Fraction of memoized results that survived the edit.
    pub fn retention_rate(&self) -> f64 {
        let total = self.invalidated + self.retained;
        if total == 0 {
            0.0
        } else {
            self.retained as f64 / total as f64
        }
    }
}

/// Counters describing a db's query traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Values computed fresh.
    pub computed: u64,
    /// Reads served from the in-memory memo table.
    pub memo_hits: u64,
    /// Durable reads served from the persist layer.
    pub persist_hits: u64,
    /// Durable reads that consulted the persist layer and missed.
    pub persist_misses: u64,
}

/// The query database: one program plus every artifact demanded of it.
///
/// This is the typed replacement for the seed's string-keyed memo table.
/// One db is built per program state; the engine's context store keeps dbs
/// alive across runs of byte-identical programs, and the optional
/// [`PersistLayer`] extends reuse across *processes*.
pub struct QueryDb {
    /// The program under analysis.
    pub program: Program,
    /// FNV-1a hash of the pretty-printed program; the engine's context
    /// cache key and the content anchor for durable whole-program queries.
    pub program_hash: u64,
    /// Cross-program cache of interned points-to constraint batches (shared
    /// by the engine across dbs so an edited program re-solves points-to
    /// from the cached constraint graph).
    pts_cache: Arc<ConstraintCache>,
    /// Cross-process persistence, when attached.
    persist: Option<Arc<PersistLayer>>,
    /// How [`Pointsto`] solves run for this db (threads, solver choice,
    /// derivation tracing). Environment-driven by default; the engine's
    /// `--provenance` switch overrides it per engine.
    solve_options: SolveOptions,
    table: Mutex<HashMap<(TypeId, u64), Slot>>,
    /// `TypeId` → query `NAME`, filled as queries are demanded; lets
    /// invalidation translate dependency-graph refs (which use names) back
    /// to memo-table slots (which use type ids).
    names: Mutex<HashMap<TypeId, &'static str>>,
    deps: Mutex<BTreeSet<(QueryRef, QueryRef)>>,
    computed: AtomicU64,
    memo_hits: AtomicU64,
    persist_hits: AtomicU64,
    persist_misses: AtomicU64,
}

/// Poison-tolerant lock acquisition: a checker thread that panicked while
/// holding a query lock must not wedge every later request of a resident
/// daemon — the data under these locks is append-only memo state, valid
/// regardless of where the panicking thread stopped.
fn lock_recovering<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl QueryDb {
    /// Builds a db for a program (cheap: every artifact is lazy).
    pub fn new(program: &Program) -> QueryDb {
        QueryDb::with_hash(program, QueryDb::hash_program(program))
    }

    /// The content hash a db for `program` would carry; computable without
    /// cloning the program (used for context-store lookups).
    pub fn hash_program(program: &Program) -> u64 {
        fnv1a(pretty_program(program).as_bytes())
    }

    /// Builds a db with an already-computed program hash.
    pub fn with_hash(program: &Program, program_hash: u64) -> QueryDb {
        QueryDb {
            program: program.clone(),
            program_hash,
            pts_cache: Arc::new(ConstraintCache::new()),
            persist: None,
            solve_options: SolveOptions::from_env(),
            table: Mutex::new(HashMap::new()),
            names: Mutex::new(HashMap::new()),
            deps: Mutex::new(BTreeSet::new()),
            computed: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            persist_hits: AtomicU64::new(0),
            persist_misses: AtomicU64::new(0),
        }
    }

    /// Shares an existing points-to constraint cache (builder style).
    pub fn with_pointsto_cache(mut self, cache: Arc<ConstraintCache>) -> QueryDb {
        self.pts_cache = cache;
        self
    }

    /// Attaches a cross-process persist layer: [`DurableQuery`] reads
    /// consult it before computing and spill fresh results into it.
    pub fn with_persist(mut self, persist: Option<Arc<PersistLayer>>) -> QueryDb {
        self.persist = persist;
        self
    }

    /// Sets how [`Pointsto`] solves run in this db (builder style).
    pub fn with_solve_options(mut self, opts: SolveOptions) -> QueryDb {
        self.solve_options = opts;
        self
    }

    /// The solve options [`Pointsto`] computes with.
    pub fn solve_options(&self) -> SolveOptions {
        self.solve_options
    }

    /// The attached persist layer, if any.
    pub fn persist(&self) -> Option<Arc<PersistLayer>> {
        self.persist.clone()
    }

    /// The shared points-to constraint cache.
    pub fn pointsto_cache(&self) -> Arc<ConstraintCache> {
        Arc::clone(&self.pts_cache)
    }

    fn slot(&self, type_id: TypeId, name: &'static str, key_hash: u64) -> Slot {
        lock_recovering(&self.names).entry(type_id).or_insert(name);
        let mut table = lock_recovering(&self.table);
        Arc::clone(table.entry((type_id, key_hash)).or_default())
    }

    fn record_edge(&self, child: QueryRef) {
        if let Some(parent) = ACTIVE.with(|s| s.borrow().last().copied()) {
            lock_recovering(&self.deps).insert((parent, child));
        }
    }

    fn scan<Q: Query>(entries: &[SlotEntry], key: &Q::Key) -> Option<Arc<Q::Value>> {
        entries.iter().find_map(|e| {
            e.payload
                .downcast_ref::<(Q::Key, Arc<Q::Value>)>()
                .filter(|(k, _)| k == key)
                .map(|(_, v)| Arc::clone(v))
        })
    }

    fn compute_entry<Q: Query>(&self, key: &Q::Key, key_hash: u64) -> Arc<Q::Value> {
        let _span = ivy_telemetry::span("engine/query", Q::NAME);
        ivy_telemetry::counter_labeled("ivy_query_computed_total", "query", Q::NAME, 1);
        ACTIVE.with(|s| s.borrow_mut().push((Q::NAME, key_hash)));
        let guard = ActiveGuard;
        let value = Arc::new(Q::compute(self, key));
        drop(guard);
        self.computed.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Demands a query at a key, computing it at most once per `(Q, key)`.
    ///
    /// Two threads demanding the same instance serialize on its slot and
    /// compute once; unrelated instances proceed in parallel. A query whose
    /// `compute` (transitively) demands *itself at the same key* is a cycle
    /// and deadlocks — dependencies must be acyclic, which the bottom-up
    /// artifact stack guarantees by construction.
    pub fn get<Q: Query>(&self, key: &Q::Key) -> Arc<Q::Value> {
        let key_hash = key.stable_hash();
        self.record_edge((Q::NAME, key_hash));
        let slot = self.slot(TypeId::of::<Q>(), Q::NAME, key_hash);
        let mut entries = lock_recovering(&slot);
        if let Some(found) = Self::scan::<Q>(&entries, key) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            ivy_telemetry::counter_labeled("ivy_query_memo_hits_total", "query", Q::NAME, 1);
            return found;
        }
        let value = self.compute_entry::<Q>(key, key_hash);
        entries.push(SlotEntry {
            payload: Box::new((key.clone(), Arc::clone(&value))),
            durable: None,
            adopted: false,
        });
        value
    }

    /// Demands a durable query: like [`QueryDb::get`], but a memo miss
    /// consults the attached persist layer before computing, and fresh
    /// results are spilled back to it.
    pub fn get_durable<Q: DurableQuery>(&self, key: &Q::Key) -> Arc<Q::Value> {
        let key_hash = key.stable_hash();
        self.record_edge((Q::NAME, key_hash));
        let slot = self.slot(TypeId::of::<Q>(), Q::NAME, key_hash);
        let mut entries = lock_recovering(&slot);
        if let Some(found) = Self::scan::<Q>(&entries, key) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            ivy_telemetry::counter_labeled("ivy_query_memo_hits_total", "query", Q::NAME, 1);
            return found;
        }
        let durable_key = Q::durable_key(self, key);
        let revalidator: Revalidator = {
            let key = key.clone();
            Arc::new(move |db: &QueryDb| Q::durable_key(db, &key))
        };
        if let Some(layer) = &self.persist {
            if let Some(value) = layer
                .get(Q::NAME, Q::FORMAT_VERSION, durable_key)
                .and_then(|raw| Q::decode(&raw))
            {
                self.persist_hits.fetch_add(1, Ordering::Relaxed);
                ivy_telemetry::counter_labeled("ivy_query_persist_hits_total", "query", Q::NAME, 1);
                let value = Arc::new(value);
                // The compute never ran, so this entry has no outgoing
                // dependency edges; [`QueryDb::apply_edit`] compensates by
                // re-keying every walk-unreachable durable entry against
                // the edited program instead of trusting reachability.
                entries.push(SlotEntry {
                    payload: Box::new((key.clone(), Arc::clone(&value))),
                    durable: Some((durable_key, revalidator)),
                    adopted: true,
                });
                return value;
            }
            self.persist_misses.fetch_add(1, Ordering::Relaxed);
            ivy_telemetry::counter_labeled("ivy_query_persist_misses_total", "query", Q::NAME, 1);
            let value = self.compute_entry::<Q>(key, key_hash);
            layer.put(Q::NAME, Q::FORMAT_VERSION, durable_key, Q::encode(&value));
            entries.push(SlotEntry {
                payload: Box::new((key.clone(), Arc::clone(&value))),
                durable: Some((durable_key, revalidator)),
                adopted: false,
            });
            return value;
        }
        let value = self.compute_entry::<Q>(key, key_hash);
        entries.push(SlotEntry {
            payload: Box::new((key.clone(), Arc::clone(&value))),
            durable: Some((durable_key, revalidator)),
            adopted: false,
        });
        value
    }

    /// The memoized value for a query instance, if it has already been
    /// computed (or loaded) in this db. Never computes — the engine uses
    /// this to report points-to statistics without forcing a solve on runs
    /// that were served entirely from caches.
    pub fn peek<Q: Query>(&self, key: &Q::Key) -> Option<Arc<Q::Value>> {
        let slot = self.slot(TypeId::of::<Q>(), Q::NAME, key.stable_hash());
        let entries = lock_recovering(&slot);
        Self::scan::<Q>(&entries, key)
    }

    /// The dependency edges recorded so far: `(dependent, dependency)`
    /// pairs of `(query name, key hash)`.
    pub fn dependencies(&self) -> Vec<(QueryRef, QueryRef)> {
        lock_recovering(&self.deps).iter().cloned().collect()
    }

    /// True if a `dependent`-named query was recorded demanding a
    /// `dependency`-named query (at any keys).
    pub fn depends_on(&self, dependent: &str, dependency: &str) -> bool {
        lock_recovering(&self.deps)
            .iter()
            .any(|((p, _), (c, _))| *p == dependent && *c == dependency)
    }

    /// Query-traffic counters for this db.
    pub fn query_stats(&self) -> QueryStats {
        QueryStats {
            computed: self.computed.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            persist_hits: self.persist_hits.load(Ordering::Relaxed),
            persist_misses: self.persist_misses.load(Ordering::Relaxed),
        }
    }

    // ---- dependency-driven invalidation -------------------------------

    /// Derives a db for an edited program from this one, invalidating only
    /// the queries the edit can actually reach.
    ///
    /// The edit is diffed at the input layer: every function whose
    /// span-insensitive content hash changed (including added and removed
    /// functions) seeds its [`FnContent`] instance, and a changed type
    /// environment seeds [`EnvHash`]. The transitive *dependents* of the
    /// seeds — per the dependency edges recorded while this db computed —
    /// are discarded; every other memoized result is carried into the new
    /// db and served from memory without recompute. A dependency-reachable
    /// durable entry whose content-addressed key is unchanged for the
    /// edited program is *revalidated* (kept, and propagation stops there):
    /// by the [`DurableQuery::durable_key`] contract an equal key
    /// guarantees an equal value, so e.g. an unedited function's
    /// instrumented body survives even though it was derived from
    /// whole-program state. The same key check runs in reverse for entries
    /// *adopted from the persist layer*: an adopted entry recorded no
    /// dependency edges (its compute never ran in this process), so
    /// reachability cannot vouch for it and it is kept only if its
    /// content-addressed key still matches under the edited program.
    ///
    /// The returned db shares the points-to constraint cache, the persist
    /// layer, and the retained memo slots with `self`; both dbs stay
    /// usable (retained results are valid for either program by
    /// construction).
    pub fn apply_edit(&self, edited: &Program) -> (QueryDb, InvalidationStats) {
        let new_hash = Self::hash_program(edited);
        let new_db = QueryDb::with_hash(edited, new_hash)
            .with_pointsto_cache(Arc::clone(&self.pts_cache))
            .with_persist(self.persist.clone())
            .with_solve_options(self.solve_options);

        // 1. Input-layer diff: which functions' contents changed, and did
        //    the type environment change with them?
        let hashes = |p: &Program| -> BTreeMap<String, u64> {
            p.functions
                .iter()
                .map(|f| (f.name.clone(), function_content_hash(f)))
                .collect()
        };
        let old_fns = hashes(&self.program);
        let new_fns = hashes(edited);
        let changed_functions: Vec<String> = old_fns
            .keys()
            .chain(new_fns.keys())
            .filter(|name| old_fns.get(*name) != new_fns.get(*name))
            .cloned()
            .collect::<BTreeSet<String>>()
            .into_iter()
            .collect();
        let env_changed = summary::env_hash(&self.program) != summary::env_hash(edited);

        let mut seeds: Vec<QueryRef> = changed_functions
            .iter()
            .map(|name| (FnContent::NAME, name.clone().stable_hash()))
            .collect();
        if env_changed {
            seeds.push((EnvHash::NAME, ().stable_hash()));
        }

        // 2. Walk the recorded dependency graph upward from the seeds,
        //    stopping at durable entries whose content key still matches.
        let edges = self.dependencies();
        let mut rdeps: HashMap<QueryRef, Vec<QueryRef>> = HashMap::new();
        for (parent, child) in &edges {
            rdeps.entry(*child).or_default().push(*parent);
        }
        let mut dirty: HashSet<QueryRef> = seeds.iter().copied().collect();
        let mut clean: HashSet<QueryRef> = HashSet::new();
        let mut queue: Vec<QueryRef> = seeds.clone();
        self.propagate_dirty(&rdeps, &mut queue, &mut dirty, &mut clean, &new_db);

        // Snapshot the table before touching any slot lock: an in-flight
        // compute on another thread holds its slot lock and may demand the
        // table lock, so holding both here would deadlock a live daemon.
        let names = lock_recovering(&self.names).clone();
        let slots: Vec<((TypeId, u64), Slot)> = lock_recovering(&self.table)
            .iter()
            .map(|(key, slot)| (*key, Arc::clone(slot)))
            .collect();

        // 2b. Re-key every *adopted* entry the walk could not reach. An
        //    entry adopted from the persist layer recorded no dependency
        //    edges (its compute never ran in this process), so
        //    reachability alone cannot prove it current — without this
        //    sweep, a daemon restarted over a warm cache directory would
        //    carry pre-edit whole-program results into the new db
        //    unconditionally. A key mismatch dirties the entry and
        //    propagates upward exactly like a seed. Entries that *were*
        //    computed here are exempt: their edges record exactly what
        //    they read, so unreachable means unaffected — a key check
        //    would over-invalidate queries whose durable key is anchored
        //    more coarsely than what they actually read (e.g. a
        //    program-hash-keyed per-function query that only touches
        //    points-to when the function frees untyped pointers). Checks
        //    run outside every lock: a revalidator may demand queries on
        //    the new db.
        let mut rekeyed: Vec<QueryRef> = Vec::new();
        for ((type_id, key_hash), slot) in &slots {
            let name = names.get(type_id).copied().unwrap_or("");
            let q = (name, *key_hash);
            if dirty.contains(&q) || clean.contains(&q) {
                continue;
            }
            let checks: Vec<(u64, Revalidator)> = lock_recovering(slot)
                .iter()
                .filter(|e| e.adopted)
                .filter_map(|e| e.durable.as_ref().map(|(k, r)| (*k, Arc::clone(r))))
                .collect();
            if checks
                .iter()
                .any(|(old_key, reval)| reval(&new_db) != *old_key)
            {
                dirty.insert(q);
                rekeyed.push(q);
            }
        }
        self.propagate_dirty(&rdeps, &mut rekeyed, &mut dirty, &mut clean, &new_db);

        // 3. Carry every slot outside the dirty set into the new db, and
        //    every edge whose dependent survived (a dirty dependent will
        //    re-record its edges when it recomputes).
        let mut stats = InvalidationStats {
            changed_functions,
            env_changed,
            seeds: seeds.len(),
            revalidated: clean.len(),
            ..InvalidationStats::default()
        };
        {
            let mut new_table = lock_recovering(&new_db.table);
            for ((type_id, key_hash), slot) in slots {
                let entry_count = lock_recovering(&slot).len();
                if entry_count == 0 {
                    continue;
                }
                let name = names.get(&type_id).copied().unwrap_or("");
                if dirty.contains(&(name, key_hash)) {
                    stats.invalidated += entry_count;
                } else {
                    // `or_insert`, not `insert`: a revalidator demanding
                    // queries on the new db may already have computed this
                    // slot there, and that fresh result is the one whose
                    // edges the new db recorded.
                    new_table.entry((type_id, key_hash)).or_insert(slot);
                    stats.retained += entry_count;
                }
            }
        }
        // Merge rather than assign, for the same reason: revalidator
        // demands during the walk already recorded their own names and
        // edges on the new db, and overwriting would orphan those memo
        // entries (their slots would resolve to no name and carry no
        // edges, so a later edit could retain them as unreachable).
        lock_recovering(&new_db.names).extend(names);
        lock_recovering(&new_db.deps).extend(
            edges
                .into_iter()
                .filter(|(parent, _)| !dirty.contains(parent)),
        );
        (new_db, stats)
    }

    /// Walks the reverse dependency edges upward from the queued refs,
    /// marking every transitive dependent dirty unless all of its entries
    /// revalidate against the new db (in which case propagation stops
    /// there and the ref joins the clean set).
    fn propagate_dirty(
        &self,
        rdeps: &HashMap<QueryRef, Vec<QueryRef>>,
        queue: &mut Vec<QueryRef>,
        dirty: &mut HashSet<QueryRef>,
        clean: &mut HashSet<QueryRef>,
        new_db: &QueryDb,
    ) {
        while let Some(q) = queue.pop() {
            let Some(parents) = rdeps.get(&q) else {
                continue;
            };
            for &parent in parents {
                if dirty.contains(&parent) || clean.contains(&parent) {
                    continue;
                }
                if self.revalidates(parent, new_db) {
                    clean.insert(parent);
                    continue;
                }
                dirty.insert(parent);
                queue.push(parent);
            }
        }
    }

    /// True if every memoized entry recorded under a query ref is durable
    /// and would be stored under the same content-addressed key by the new
    /// db — in which case the durable contract guarantees the value is
    /// still exact and the entry need not be invalidated.
    fn revalidates(&self, q: QueryRef, new_db: &QueryDb) -> bool {
        let type_ids: Vec<TypeId> = lock_recovering(&self.names)
            .iter()
            .filter(|(_, name)| **name == q.0)
            .map(|(type_id, _)| *type_id)
            .collect();
        let slots: Vec<Slot> = {
            let table = lock_recovering(&self.table);
            type_ids
                .iter()
                .filter_map(|type_id| table.get(&(*type_id, q.1)).cloned())
                .collect()
        };
        let mut found_any = false;
        for slot in slots {
            // Collect the durable keys first: the revalidator may demand
            // cheap queries on the new db, which must not happen under this
            // slot's lock.
            let checks: Vec<(u64, Revalidator)> = {
                let entries = lock_recovering(&slot);
                let mut checks = Vec::new();
                for entry in entries.iter() {
                    let Some((old_key, reval)) = &entry.durable else {
                        return false;
                    };
                    checks.push((*old_key, Arc::clone(reval)));
                }
                checks
            };
            for (old_key, reval) in checks {
                if reval(new_db) != old_key {
                    return false;
                }
                found_any = true;
            }
        }
        found_any
    }

    // ---- built-in artifact façade -------------------------------------

    /// Points-to results at a precision level. Solved incrementally against
    /// the shared constraint cache: only functions this db sees for the
    /// first time generate constraints.
    pub fn pointsto(&self, sensitivity: Sensitivity) -> Arc<PointsToResult> {
        self.get::<Pointsto>(&sensitivity)
    }

    /// The call graph at a precision level.
    pub fn callgraph(&self, sensitivity: Sensitivity) -> Arc<CallGraph> {
        self.get::<Callgraph>(&sensitivity)
    }

    /// Per-function summaries (content/cone hashes, SCC condensation) over
    /// the call graph at a precision level. Durable: with a persist layer
    /// attached, a warm process reloads these from disk without solving
    /// points-to at all.
    pub fn summaries(&self, sensitivity: Sensitivity) -> Arc<ProgramSummaries> {
        self.get_durable::<Summaries>(&sensitivity)
    }

    /// The CFG of one defined function.
    pub fn cfg(&self, function: &str) -> Option<Arc<Cfg>> {
        let func = self.program.function(function)?;
        func.body.as_ref()?;
        Some(self.get::<CfgOf>(&function.to_string()))
    }

    /// Hash of the whole-program type environment (signatures, composites,
    /// typedefs, globals — bodies excluded).
    pub fn env_hash(&self) -> u64 {
        *self.get::<EnvHash>(&())
    }

    /// Span-insensitive content hash of one function (0 when the program
    /// has no function of that name). This is the input layer of the
    /// dependency graph: edits seed invalidation at [`FnContent`]
    /// instances, so any query that reads a function body — directly or
    /// transitively — must be connected to them (see
    /// [`QueryDb::depend_on_program`]).
    pub fn fn_content(&self, function: &str) -> u64 {
        *self.get::<FnContent>(&function.to_string())
    }

    /// Records the running query's dependency on the *whole* program: the
    /// type environment plus every function's content. Whole-program
    /// queries whose `compute` reads `db.program` directly (rather than
    /// through other queries) must call this first, or
    /// [`QueryDb::apply_edit`] cannot see that an edit reaches them.
    pub fn depend_on_program(&self) {
        self.env_hash();
        let names: Vec<String> = self
            .program
            .functions
            .iter()
            .map(|f| f.name.clone())
            .collect();
        for name in &names {
            self.fn_content(name);
        }
    }
}

// ---- built-in queries --------------------------------------------------

/// Span-insensitive content hash of one function definition (key: function
/// name; value 0 when no such function exists). An *input* query: its
/// instances are the seeds [`QueryDb::apply_edit`] marks dirty, so its own
/// compute reads the program directly by design.
pub struct FnContent;

impl Query for FnContent {
    type Key = String;
    type Value = u64;
    const NAME: &'static str = "engine/fn-content";

    fn compute(db: &QueryDb, key: &String) -> u64 {
        db.program
            .function(key)
            .map(function_content_hash)
            .unwrap_or(0)
    }
}

/// Points-to analysis at a [`Sensitivity`].
pub struct Pointsto;

impl Query for Pointsto {
    type Key = Sensitivity;
    type Value = PointsToResult;
    const NAME: &'static str = "engine/pointsto";

    fn compute(db: &QueryDb, key: &Sensitivity) -> PointsToResult {
        // Whole-program: any function edit (or env change) must reach this
        // result through the dependency graph.
        db.depend_on_program();
        pointsto::analyze_incremental_with(&db.program, *key, &db.pts_cache, db.solve_options)
    }
}

/// Call graph built over [`Pointsto`] results.
pub struct Callgraph;

impl Query for Callgraph {
    type Key = Sensitivity;
    type Value = CallGraph;
    const NAME: &'static str = "engine/callgraph";

    fn compute(db: &QueryDb, key: &Sensitivity) -> CallGraph {
        CallGraph::build(&db.program, &db.get::<Pointsto>(key))
    }
}

/// Per-function summaries and SCC condensation over [`Callgraph`].
pub struct Summaries;

impl Query for Summaries {
    type Key = Sensitivity;
    type Value = ProgramSummaries;
    const NAME: &'static str = "engine/summaries";

    fn compute(db: &QueryDb, key: &Sensitivity) -> ProgramSummaries {
        summary::summarize(&db.program, &db.get::<Callgraph>(key))
    }
}

impl DurableQuery for Summaries {
    const FORMAT_VERSION: u32 = 1;

    fn durable_key(db: &QueryDb, key: &Sensitivity) -> u64 {
        mix(db.program_hash, key.stable_hash())
    }

    fn encode(value: &ProgramSummaries) -> Value {
        let mut functions = Map::new();
        for (name, s) in &value.functions {
            let mut f = Map::new();
            f.insert(
                "callees".into(),
                Value::Array(s.callees.iter().map(|c| Value::from(c.as_str())).collect()),
            );
            f.insert("content_hash".into(), Value::from(s.content_hash));
            f.insert("cone_hash".into(), Value::from(s.cone_hash));
            f.insert("scc".into(), Value::from(s.scc));
            functions.insert(name.clone(), Value::Object(f));
        }
        let sccs: Vec<Value> = value
            .condensation
            .sccs
            .iter()
            .map(|c| Value::Array(c.iter().map(|n| Value::from(n.as_str())).collect()))
            .collect();
        let levels: Vec<Value> = value
            .condensation
            .levels
            .iter()
            .map(|l| Value::Array(l.iter().map(|&i| Value::from(i)).collect()))
            .collect();
        let mut root = Map::new();
        root.insert("env_hash".into(), Value::from(value.env_hash));
        root.insert("functions".into(), Value::Object(functions));
        root.insert("sccs".into(), Value::Array(sccs));
        root.insert("levels".into(), Value::Array(levels));
        Value::Object(root)
    }

    fn decode(raw: &Value) -> Option<ProgramSummaries> {
        let env_hash = raw.get("env_hash")?.as_u64()?;
        let sccs: Vec<Vec<String>> = raw
            .get("sccs")?
            .as_array()?
            .iter()
            .map(|c| {
                c.as_array().map(|ns| {
                    ns.iter()
                        .filter_map(|n| n.as_str().map(String::from))
                        .collect()
                })
            })
            .collect::<Option<_>>()?;
        let levels: Vec<Vec<usize>> = raw
            .get("levels")?
            .as_array()?
            .iter()
            .map(|l| {
                l.as_array().map(|is| {
                    is.iter()
                        .filter_map(|i| i.as_u64().map(|v| v as usize))
                        .collect()
                })
            })
            .collect::<Option<_>>()?;
        let mut scc_of = BTreeMap::new();
        for (i, comp) in sccs.iter().enumerate() {
            for name in comp {
                scc_of.insert(name.clone(), i);
            }
        }
        let mut functions = BTreeMap::new();
        for (name, f) in raw.get("functions")?.as_object()?.iter() {
            let callees: BTreeSet<String> = f
                .get("callees")?
                .as_array()?
                .iter()
                .filter_map(|c| c.as_str().map(String::from))
                .collect();
            functions.insert(
                name.clone(),
                FunctionSummary {
                    name: name.clone(),
                    callees,
                    content_hash: f.get("content_hash")?.as_u64()?,
                    cone_hash: f.get("cone_hash")?.as_u64()?,
                    scc: f.get("scc")?.as_u64()? as usize,
                },
            );
        }
        Some(ProgramSummaries {
            functions,
            condensation: Condensation {
                sccs,
                scc_of,
                levels,
            },
            env_hash,
        })
    }
}

/// CFG of one defined function (key: function name).
pub struct CfgOf;

impl Query for CfgOf {
    type Key = String;
    type Value = Cfg;
    const NAME: &'static str = "engine/cfg";

    fn compute(db: &QueryDb, key: &String) -> Cfg {
        // Tie the CFG to its function's content so an edit invalidates
        // exactly this instance.
        db.fn_content(key);
        Cfg::build(
            db.program
                .function(key)
                .expect("cfg queried for a defined function"),
        )
    }
}

/// Hash of the whole-program type environment. Like [`FnContent`], an
/// *input* query: [`QueryDb::apply_edit`] seeds it directly when the diff
/// shows the environment changed.
pub struct EnvHash;

impl Query for EnvHash {
    type Key = ();
    type Value = u64;
    const NAME: &'static str = "engine/env-hash";

    fn compute(db: &QueryDb, _key: &()) -> u64 {
        summary::env_hash(&db.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;
    use std::sync::atomic::AtomicUsize;

    fn small_db() -> QueryDb {
        let p = parse_program("fn a() { b(); } fn b() { }").unwrap();
        QueryDb::new(&p)
    }

    static CALLS_A: AtomicUsize = AtomicUsize::new(0);
    static CALLS_B: AtomicUsize = AtomicUsize::new(0);

    /// Two query types with deliberately *identical* names and keys but
    /// different value types — the exact shape that panicked the old
    /// string-keyed memo with "used with two different types".
    struct CollidingA;
    struct CollidingB;

    impl Query for CollidingA {
        type Key = String;
        type Value = u64;
        const NAME: &'static str = "test/colliding";
        fn compute(_db: &QueryDb, _key: &String) -> u64 {
            CALLS_A.fetch_add(1, Ordering::SeqCst);
            42
        }
    }

    impl Query for CollidingB {
        type Key = String;
        type Value = String;
        const NAME: &'static str = "test/colliding";
        fn compute(_db: &QueryDb, _key: &String) -> String {
            CALLS_B.fetch_add(1, Ordering::SeqCst);
            "forty-two".to_string()
        }
    }

    #[test]
    fn colliding_names_cannot_alias() {
        // With the seed's `Memo`, this sequence was the documented panic:
        //   ctx.memo::<u64>("test/colliding", ..);
        //   ctx.memo::<String>("test/colliding", ..);  // -> panic!
        // Typed queries key the table by TypeId, so both coexist.
        let db = small_db();
        let key = "same-key".to_string();
        let a = db.get::<CollidingA>(&key);
        let b = db.get::<CollidingB>(&key);
        assert_eq!(*a, 42);
        assert_eq!(*b, "forty-two");
        // And each computed exactly once despite the shared name and key.
        let a2 = db.get::<CollidingA>(&key);
        let b2 = db.get::<CollidingB>(&key);
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(Arc::ptr_eq(&b, &b2));
    }

    #[test]
    fn computes_once_and_shares() {
        struct Counted;
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        impl Query for Counted {
            type Key = u64;
            type Value = u64;
            const NAME: &'static str = "test/counted";
            fn compute(_db: &QueryDb, key: &u64) -> u64 {
                CALLS.fetch_add(1, Ordering::SeqCst);
                key * 2
            }
        }
        let db = small_db();
        assert_eq!(*db.get::<Counted>(&3), 6);
        assert_eq!(*db.get::<Counted>(&3), 6);
        assert_eq!(*db.get::<Counted>(&4), 8);
        assert_eq!(CALLS.load(Ordering::SeqCst), 2);
        let stats = db.query_stats();
        assert_eq!(stats.memo_hits, 1);
        assert!(stats.computed >= 2);
    }

    #[test]
    fn builtin_artifacts_are_shared_instances() {
        let db = small_db();
        let p1 = db.pointsto(Sensitivity::Steensgaard);
        let p2 = db.pointsto(Sensitivity::Steensgaard);
        assert!(Arc::ptr_eq(&p1, &p2));
        let s = db.summaries(Sensitivity::Steensgaard);
        assert!(s.functions.contains_key("a"));
        assert!(db.cfg("a").is_some());
        assert!(db.cfg("missing").is_none());
    }

    #[test]
    fn dependency_edges_are_recorded() {
        let db = small_db();
        db.summaries(Sensitivity::Steensgaard);
        assert!(db.depends_on(Summaries::NAME, Callgraph::NAME));
        assert!(db.depends_on(Callgraph::NAME, Pointsto::NAME));
        // The leaf computed nothing below it.
        assert!(!db.depends_on(Pointsto::NAME, Callgraph::NAME));
    }

    #[test]
    fn peek_never_computes() {
        let db = small_db();
        assert!(db.peek::<Pointsto>(&Sensitivity::Steensgaard).is_none());
        db.pointsto(Sensitivity::Steensgaard);
        assert!(db.peek::<Pointsto>(&Sensitivity::Steensgaard).is_some());
    }

    #[test]
    fn summaries_roundtrip_through_the_durable_encoding() {
        let db = small_db();
        let s = db.summaries(Sensitivity::Steensgaard);
        let decoded = <Summaries as DurableQuery>::decode(&Summaries::encode(&s))
            .expect("well-formed encoding decodes");
        assert_eq!(decoded.env_hash, s.env_hash);
        assert_eq!(decoded.functions, s.functions);
        assert_eq!(decoded.condensation.sccs, s.condensation.sccs);
        assert_eq!(decoded.condensation.levels, s.condensation.levels);
        assert_eq!(decoded.condensation.scc_of, s.condensation.scc_of);
        // Tampered encodings are rejected, not mis-decoded.
        assert!(<Summaries as DurableQuery>::decode(&Value::from("garbage")).is_none());
    }

    #[test]
    fn apply_edit_invalidates_only_the_dependent_cone() {
        let db = QueryDb::new(
            &parse_program("fn a() { b(); } fn b() { c(); } fn c() { } fn lone() { }").unwrap(),
        );
        db.summaries(Sensitivity::Steensgaard);
        db.cfg("a");
        db.cfg("lone");

        // Edit `c`'s body only.
        let edited =
            parse_program("fn a() { b(); } fn b() { c(); } fn c() { c(); } fn lone() { }").unwrap();
        let (new_db, stats) = db.apply_edit(&edited);
        assert_eq!(stats.changed_functions, vec!["c".to_string()]);
        assert!(!stats.env_changed, "a body edit leaves the env untouched");
        assert_eq!(stats.seeds, 1);
        assert!(stats.invalidated > 0, "whole-program artifacts go dirty");
        assert!(stats.retained > 0, "unrelated per-function results survive");

        // The whole-program points-to result was dropped; the unedited
        // functions' CFGs and content hashes were carried over.
        assert!(new_db.peek::<Pointsto>(&Sensitivity::Steensgaard).is_none());
        assert!(new_db.peek::<CfgOf>(&"a".to_string()).is_some());
        assert!(new_db.peek::<CfgOf>(&"lone".to_string()).is_some());
        assert!(new_db.peek::<FnContent>(&"lone".to_string()).is_some());
        assert!(
            new_db.peek::<FnContent>(&"c".to_string()).is_none(),
            "the edited function's content hash is a seed"
        );

        // Recomputation in the new db is correct and rebuilds the edges.
        let s = new_db.summaries(Sensitivity::Steensgaard);
        assert!(s.functions.contains_key("c"));
        assert!(new_db.depends_on(Summaries::NAME, Callgraph::NAME));
        assert_ne!(new_db.fn_content("c"), db.fn_content("c"));
        assert_eq!(new_db.fn_content("lone"), db.fn_content("lone"));
    }

    #[test]
    fn apply_edit_detects_signature_and_function_set_changes() {
        let db = small_db();
        db.summaries(Sensitivity::Steensgaard);

        // Adding a function changes the env (its signature joins the
        // environment) and seeds its own content instance.
        let grown = parse_program("fn a() { b(); } fn b() { } fn d() { }").unwrap();
        let (new_db, stats) = db.apply_edit(&grown);
        assert_eq!(stats.changed_functions, vec!["d".to_string()]);
        assert!(stats.env_changed);
        assert!(new_db.peek::<Pointsto>(&Sensitivity::Steensgaard).is_none());
        assert_eq!(
            new_db.summaries(Sensitivity::Steensgaard).functions.len(),
            3
        );
    }

    #[test]
    fn apply_edit_revalidates_content_keyed_durable_entries() {
        /// A durable query keyed (and durably keyed) purely by content —
        /// the shape of the per-function instrumented-body entries whose
        /// survival across edits the daemon depends on.
        struct ContentKeyed;
        impl Query for ContentKeyed {
            type Key = u64;
            type Value = u64;
            const NAME: &'static str = "test/content-keyed";
            fn compute(db: &QueryDb, key: &u64) -> u64 {
                // Reads whole-program state, so it is dependency-reachable
                // from every function edit...
                db.depend_on_program();
                key * 3
            }
        }
        impl DurableQuery for ContentKeyed {
            const FORMAT_VERSION: u32 = 1;
            fn encode(value: &u64) -> Value {
                Value::from(*value)
            }
            fn decode(raw: &Value) -> Option<u64> {
                raw.as_u64()
            }
        }

        let db = small_db();
        db.get_durable::<ContentKeyed>(&7);
        let edited = parse_program("fn a() { b(); b(); } fn b() { }").unwrap();
        let (new_db, stats) = db.apply_edit(&edited);
        // ...but its durable key is untouched by the edit, so it is
        // revalidated rather than discarded.
        assert!(stats.revalidated >= 1);
        assert!(new_db.peek::<ContentKeyed>(&7).is_some());
    }

    #[test]
    fn apply_edit_rekeys_entries_adopted_from_the_persist_layer() {
        /// A whole-program durable query anchored to the program hash —
        /// the shape of [`Summaries`].
        struct WholeProgram;
        impl Query for WholeProgram {
            type Key = ();
            type Value = u64;
            const NAME: &'static str = "test/whole-program";
            fn compute(db: &QueryDb, _key: &()) -> u64 {
                db.depend_on_program();
                db.program.functions.len() as u64
            }
        }
        impl DurableQuery for WholeProgram {
            const FORMAT_VERSION: u32 = 1;
            fn durable_key(db: &QueryDb, key: &()) -> u64 {
                mix(db.program_hash, key.stable_hash())
            }
            fn encode(value: &u64) -> Value {
                Value::from(*value)
            }
            fn decode(raw: &Value) -> Option<u64> {
                raw.as_u64()
            }
        }

        let dir = std::env::temp_dir().join(format!("ivy-query-rekey-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let program = parse_program("fn a() { b(); } fn b() { }").unwrap();

        // Process one computes the entry and flushes it to disk.
        {
            let layer = Arc::new(PersistLayer::open(&dir).unwrap());
            let db = QueryDb::new(&program).with_persist(Some(layer.clone()));
            db.get_durable::<WholeProgram>(&());
            layer.flush().unwrap();
        }

        // "Process two" adopts it from disk: a persist hit records no
        // dependency edges, so the edit walk cannot reach the entry from
        // the changed-function seeds.
        let layer = Arc::new(PersistLayer::open(&dir).unwrap());
        let db = QueryDb::new(&program).with_persist(Some(layer));
        db.get_durable::<WholeProgram>(&());
        assert_eq!(db.query_stats().persist_hits, 1);

        let edited = parse_program("fn a() { b(); b(); } fn b() { }").unwrap();
        let (new_db, _) = db.apply_edit(&edited);
        assert!(
            new_db.peek::<WholeProgram>(&()).is_none(),
            "an edge-less whole-program entry must be re-keyed out on edit"
        );
        // Recomputing in the new db stores the entry under the edited
        // program's key.
        assert_eq!(*new_db.get_durable::<WholeProgram>(&()), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_test_counters_are_exercised() {
        // Silence dead-code analysis honestly: the statics above are bumped
        // by the colliding-queries test regardless of execution order.
        assert!(CALLS_A.load(Ordering::SeqCst) <= 1);
        assert!(CALLS_B.load(Ordering::SeqCst) <= 1);
    }
}
