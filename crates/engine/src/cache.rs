//! The incremental diagnostic cache.
//!
//! Results are keyed by `(checker, cone hash, context fingerprint)`: the
//! cone hash covers the function's own definition and everything it can
//! transitively call, the fingerprint covers whatever else the checker
//! declared (configuration, type environment, caller context). After an
//! edit, only the dirty cone misses; an unchanged program is served
//! entirely from cache. The cache is shared — across repeated runs, across
//! the analyze→fix→re-analyze pipeline loop, and across corpus variants,
//! where generated kernels share most of their functions and therefore most
//! of their cache entries.

use crate::diag::Diagnostic;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Cache key: checker name, function cone hash, checker context
/// fingerprint.
pub type CacheKey = (&'static str, u64, u64);

/// Shared, thread-safe diagnostic cache with hit/miss accounting.
#[derive(Default)]
pub struct DiagnosticCache {
    map: RwLock<HashMap<CacheKey, Arc<Vec<Diagnostic>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DiagnosticCache {
    /// An empty cache.
    pub fn new() -> DiagnosticCache {
        DiagnosticCache::default()
    }

    /// Looks up a result, counting the outcome.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<Diagnostic>>> {
        let found = self
            .map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a computed result.
    pub fn put(&self, key: CacheKey, diags: Vec<Diagnostic>) -> Arc<Vec<Diagnostic>> {
        let value = Arc::new(diags);
        self.map
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, value.clone());
        value
    }

    /// Lifetime hits (all runs sharing this cache).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        self.map
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hits_and_misses() {
        let cache = DiagnosticCache::new();
        let key = ("test", 1, 2);
        assert!(cache.get(&key).is_none());
        cache.put(key, Vec::new());
        assert!(cache.get(&key).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.clear();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
    }
}
