//! `ivy-engine` — the parallel, incremental, plugin-based analysis engine.
//!
//! The paper's central claim is that sound analyses share one substrate and
//! can be applied *together* to a whole kernel. This crate is that substrate
//! turned into an execution engine. It has four layers:
//!
//! 1. **Plugins** — the [`Checker`] trait: a name, a required points-to
//!    [`Sensitivity`](ivy_analysis::pointsto::Sensitivity), and a
//!    per-function `check_function`. Deputy, CCount, and BlockStop register
//!    through adapter impls in their own crates; new checkers need no engine
//!    changes (the STANSE-style framework/plugin split).
//! 2. **Scheduler** — [`Engine::analyze`] condenses the call graph into
//!    SCCs, orders them into bottom-up levels, and fans each level out
//!    across rayon workers. Whole-program artifacts (points-to, call graph,
//!    CFGs, checker precomputations) live in the shared, memoized
//!    [`AnalysisCtx`] and are computed once instead of once per checker.
//! 3. **Incremental cache** — per-function results are keyed by a content
//!    hash of the function's transitive-callee *cone* plus a checker
//!    context fingerprint ([`DiagnosticCache`]); after an edit only the
//!    dirty cone recomputes, and re-analyzing an unchanged kernel is served
//!    entirely from cache. The cache is shared across runs, across the
//!    pipeline's analyze→fix→re-analyze loop, and across corpus variants
//!    ([`Engine::analyze_corpus`]).
//! 4. **Reports** — the unified [`Diagnostic`]/[`Report`] model with
//!    stable-ordered JSON and SARIF serialization; parallel and
//!    single-threaded runs produce byte-identical reports.
//!
//! # Examples
//!
//! ```
//! use ivy_engine::{AnalysisCtx, Checker, Diagnostic, Engine, Severity};
//! use ivy_cmir::ast::Function;
//! use ivy_cmir::parser::parse_program;
//! use std::sync::Arc;
//!
//! /// A toy plugin flagging functions with more than two parameters.
//! struct ParamCount;
//!
//! impl Checker for ParamCount {
//!     fn name(&self) -> &'static str {
//!         "param-count"
//!     }
//!     fn check_function(&self, _ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
//!         if func.params.len() <= 2 {
//!             return Vec::new();
//!         }
//!         vec![Diagnostic {
//!             checker: "param-count".into(),
//!             code: "param-count/too-many".into(),
//!             function: func.name.clone(),
//!             severity: Severity::Warning,
//!             message: format!("{} parameters", func.params.len()),
//!             span: Some(func.span),
//!             fix_hint: None,
//!         }]
//!     }
//! }
//!
//! let program = parse_program("fn f(a: u32, b: u32, c: u32) { }").unwrap();
//! let engine = Engine::new().with_checker(Arc::new(ParamCount));
//! let report = engine.analyze(&program);
//! assert_eq!(report.diagnostics.len(), 1);
//! // A second run over the unchanged program is served from cache.
//! let again = engine.analyze(&program);
//! assert_eq!(again.stats.cache_hits, 1);
//! assert_eq!(again.diagnostics, report.diagnostics);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod checker;
pub mod ctx;
pub mod diag;
mod engine;

pub use cache::{CacheKey, DiagnosticCache};
pub use checker::Checker;
pub use ctx::AnalysisCtx;
pub use diag::{Diagnostic, EngineStats, Report, Severity};
pub use engine::{CtxStore, Engine};

/// Re-export of the JSON value model used by report serialization (the
/// vendored `serde_json` shim; see `vendor/serde_json`).
pub use serde_json as json;

/// Content-hashing helpers shared with checker plugins (re-exported from
/// `ivy_analysis::summary` so plugins need no direct `ivy-analysis` dep).
pub mod hash {
    pub use ivy_analysis::summary::{fnv1a, mix};
}
