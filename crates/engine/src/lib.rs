//! `ivy-engine` — the parallel, incremental, plugin-based analysis engine.
//!
//! The paper's central claim is that sound analyses share one substrate and
//! can be applied *together* to a whole kernel. This crate is that substrate
//! turned into an execution engine. It has five layers:
//!
//! 1. **Queries** — the typed, demand-driven [`query`] subsystem: every
//!    artifact (points-to, call graphs, summaries, CFGs, checker-owned
//!    precomputations) is a [`query::Query`] with a typed key and value,
//!    memoized per `(query, key)` in a [`query::QueryDb`] that records
//!    dependency edges between queries — and *uses* them:
//!    [`QueryDb::apply_edit`] / [`Engine::apply_edit`] derive a db for an
//!    edited program by invalidating only the transitive dependents of
//!    the changed function contents (with content-keyed durable entries
//!    revalidated rather than dropped), which is what keeps a resident
//!    daemon warm across edits. [`AnalysisCtx`] is a thin façade over the
//!    db; the old string-keyed `Any` memo table (and its runtime
//!    type-confusion panics) is gone.
//! 2. **Plugins** — the [`Checker`] trait: a name, a required points-to
//!    [`Sensitivity`](ivy_analysis::pointsto::Sensitivity), and a
//!    per-function `check_function`. Deputy, CCount, and BlockStop register
//!    through adapter impls in their own crates and define their own typed
//!    queries; new checkers need no engine changes (the STANSE-style
//!    framework/plugin split).
//! 3. **Scheduler** — [`Engine::analyze`] condenses the call graph into
//!    SCCs, orders them into bottom-up levels, and fans each level out
//!    across rayon workers.
//! 4. **Incremental + persistent caches** — per-function results are keyed
//!    by a content hash of the function's transitive-callee *cone* plus a
//!    checker context fingerprint ([`DiagnosticCache`]); after an edit only
//!    the dirty cone recomputes, and re-analyzing an unchanged kernel is
//!    served entirely from cache. With a [`PersistLayer`] attached
//!    ([`Engine::with_persist`]), per-function diagnostics and every
//!    [`query::DurableQuery`] result additionally spill to versioned JSON
//!    under `target/ivy-cache/`, so a *separate process* (a CI run, a
//!    fleet worker) starts warm and can reproduce a report without solving
//!    points-to at all.
//! 5. **Reports** — the unified [`Diagnostic`]/[`Report`] model with
//!    stable-ordered JSON and SARIF serialization; parallel and
//!    single-threaded runs produce byte-identical reports, and warm
//!    (persist-served) runs reproduce cold reports byte-identically.
//!
//! # Examples
//!
//! ```
//! use ivy_engine::{AnalysisCtx, Checker, Diagnostic, Engine, Severity};
//! use ivy_cmir::ast::Function;
//! use ivy_cmir::parser::parse_program;
//! use std::sync::Arc;
//!
//! /// A toy plugin flagging functions with more than two parameters.
//! struct ParamCount;
//!
//! impl Checker for ParamCount {
//!     fn name(&self) -> &'static str {
//!         "param-count"
//!     }
//!     fn check_function(&self, _ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
//!         if func.params.len() <= 2 {
//!             return Vec::new();
//!         }
//!         vec![Diagnostic {
//!             checker: "param-count".into(),
//!             code: "param-count/too-many".into(),
//!             function: func.name.clone(),
//!             severity: Severity::Warning,
//!             message: format!("{} parameters", func.params.len()),
//!             span: Some(func.span),
//!             fix_hint: None,
//!             evidence: Vec::new(),
//!         }]
//!     }
//! }
//!
//! let program = parse_program("fn f(a: u32, b: u32, c: u32) { }").unwrap();
//! let engine = Engine::new().with_checker(Arc::new(ParamCount));
//! let report = engine.analyze(&program);
//! assert_eq!(report.diagnostics.len(), 1);
//! // A second run over the unchanged program is served from cache.
//! let again = engine.analyze(&program);
//! assert_eq!(again.stats.cache_hits, 1);
//! assert_eq!(again.diagnostics, report.diagnostics);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod checker;
pub mod ctx;
pub mod diag;
mod engine;
pub mod persist;
pub mod query;

pub use cache::{CacheKey, DiagnosticCache};
pub use checker::Checker;
pub use ctx::AnalysisCtx;
pub use diag::{Diagnostic, EngineStats, Evidence, Report, Severity};
pub use engine::{CtxStore, Engine};
pub use persist::PersistLayer;
pub use query::{DurableQuery, InvalidationStats, Query, QueryDb, QueryKey};

/// Re-export of the JSON value model used by report serialization (the
/// vendored `serde_json` shim; see `vendor/serde_json`).
pub use serde_json as json;

/// Content-hashing helpers shared with checker plugins (re-exported from
/// `ivy_analysis::summary` so plugins need no direct `ivy-analysis` dep).
pub mod hash {
    pub use ivy_analysis::summary::{fnv1a, mix};
}
