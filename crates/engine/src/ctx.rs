//! The shared, memoized analysis context.
//!
//! In the seed workspace every checker re-ran its own points-to analysis and
//! rebuilt its own call graph. An [`AnalysisCtx`] is constructed once per
//! program and handed to every checker; whole-program artifacts — points-to
//! results per sensitivity, call graphs, per-function CFGs, SCC summaries,
//! and arbitrary checker-owned values — are computed on first use and shared
//! from then on. The generic [`AnalysisCtx::memo`] entry point is what lets
//! checker plugins stash their own whole-program precomputations (e.g. the
//! BlockStop may-block propagation) without the engine knowing their types.

use ivy_analysis::pointsto::{self, ConstraintCache, PointsToResult, Sensitivity};
use ivy_analysis::summary::{self, fnv1a, ProgramSummaries};
use ivy_analysis::CallGraph;
use ivy_cmir::ast::Program;
use ivy_cmir::cfg::Cfg;
use ivy_cmir::pretty::pretty_program;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

type Slot = Arc<Mutex<Option<Arc<dyn Any + Send + Sync>>>>;

/// A string-keyed, type-erased, thread-safe memo table. Each key gets its
/// own slot mutex, so two threads demanding the same expensive artifact
/// compute it once while unrelated keys proceed in parallel.
#[derive(Default)]
struct Memo {
    slots: Mutex<HashMap<String, Slot>>,
}

impl Memo {
    fn get_or_insert<T: Send + Sync + 'static>(
        &self,
        key: &str,
        compute: impl FnOnce() -> T,
    ) -> Arc<T> {
        let slot = {
            let mut slots = self.slots.lock().expect("memo map poisoned");
            Arc::clone(slots.entry(key.to_string()).or_default())
        };
        let mut guard = slot.lock().expect("memo slot poisoned");
        if let Some(existing) = guard.as_ref() {
            return Arc::clone(existing)
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("memo key {key:?} used with two different types"));
        }
        let value: Arc<T> = Arc::new(compute());
        *guard = Some(value.clone() as Arc<dyn Any + Send + Sync>);
        value
    }
}

/// Shared analysis state for one program.
pub struct AnalysisCtx {
    /// The program under analysis.
    pub program: Program,
    /// FNV-1a hash of the pretty-printed program; the engine's context
    /// cache key.
    pub program_hash: u64,
    /// Cross-program cache of interned points-to constraint batches;
    /// shared by the engine across contexts so an edited program re-solves
    /// points-to from the cached constraint graph.
    pts_cache: Arc<ConstraintCache>,
    memo: Memo,
}

impl AnalysisCtx {
    /// Builds a context for a program (cheap: artifacts are lazy).
    pub fn new(program: &Program) -> AnalysisCtx {
        AnalysisCtx::with_hash(program, AnalysisCtx::hash_program(program))
    }

    /// The content hash a context for `program` would carry; computable
    /// without cloning the program (used for context-store lookups).
    pub fn hash_program(program: &Program) -> u64 {
        fnv1a(pretty_program(program).as_bytes())
    }

    /// Builds a context with an already-computed program hash.
    pub fn with_hash(program: &Program, program_hash: u64) -> AnalysisCtx {
        AnalysisCtx {
            program_hash,
            program: program.clone(),
            pts_cache: Arc::new(ConstraintCache::new()),
            memo: Memo::default(),
        }
    }

    /// Shares an existing points-to constraint cache (builder style). The
    /// engine passes its own cache here so contexts for successive program
    /// states reuse each other's per-function constraint batches.
    pub fn with_pointsto_cache(mut self, cache: Arc<ConstraintCache>) -> AnalysisCtx {
        self.pts_cache = cache;
        self
    }

    /// Points-to results at a precision level, computed once per level.
    /// Solved incrementally against the shared constraint cache: only
    /// functions this context sees for the first time generate constraints.
    pub fn pointsto(&self, sensitivity: Sensitivity) -> Arc<PointsToResult> {
        self.memo
            .get_or_insert(&format!("pointsto/{}", sensitivity.name()), || {
                pointsto::analyze_incremental(&self.program, sensitivity, &self.pts_cache)
            })
    }

    /// The call graph at a precision level, computed once per level.
    pub fn callgraph(&self, sensitivity: Sensitivity) -> Arc<CallGraph> {
        self.memo
            .get_or_insert(&format!("callgraph/{}", sensitivity.name()), || {
                CallGraph::build(&self.program, &self.pointsto(sensitivity))
            })
    }

    /// Per-function summaries (content/cone hashes, SCC condensation) over
    /// the call graph at a precision level.
    pub fn summaries(&self, sensitivity: Sensitivity) -> Arc<ProgramSummaries> {
        self.memo
            .get_or_insert(&format!("summaries/{}", sensitivity.name()), || {
                summary::summarize(&self.program, &self.callgraph(sensitivity))
            })
    }

    /// The CFG of one function, built once.
    pub fn cfg(&self, function: &str) -> Option<Arc<Cfg>> {
        let func = self.program.function(function)?;
        func.body.as_ref()?;
        Some(
            self.memo
                .get_or_insert(&format!("cfg/{function}"), || Cfg::build(func)),
        )
    }

    /// Hash of the whole-program type environment (signatures, composites,
    /// typedefs, globals — bodies excluded). See
    /// [`ivy_analysis::summary::env_hash`].
    pub fn env_hash(&self) -> u64 {
        *self
            .memo
            .get_or_insert("env_hash", || summary::env_hash(&self.program))
    }

    /// Generic checker-owned memoization: computes `compute` at most once
    /// per key per context and shares the result. Keys are namespaced by
    /// convention (`"<checker>/<artifact>"`).
    pub fn memo<T: Send + Sync + 'static>(&self, key: &str, compute: impl FnOnce() -> T) -> Arc<T> {
        self.memo.get_or_insert(key, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn small_ctx() -> AnalysisCtx {
        let p = parse_program("fn a() { b(); } fn b() { }").unwrap();
        AnalysisCtx::new(&p)
    }

    #[test]
    fn memo_computes_once_and_shares() {
        let ctx = small_ctx();
        let calls = AtomicUsize::new(0);
        let a = ctx.memo("test/x", || {
            calls.fetch_add(1, Ordering::SeqCst);
            42u64
        });
        let b = ctx.memo("test/x", || {
            calls.fetch_add(1, Ordering::SeqCst);
            7u64
        });
        assert_eq!((*a, *b), (42, 42));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn artifacts_are_shared_instances() {
        let ctx = small_ctx();
        let p1 = ctx.pointsto(Sensitivity::Steensgaard);
        let p2 = ctx.pointsto(Sensitivity::Steensgaard);
        assert!(Arc::ptr_eq(&p1, &p2));
        let s = ctx.summaries(Sensitivity::Steensgaard);
        assert!(s.functions.contains_key("a"));
        assert!(ctx.cfg("a").is_some());
        assert!(ctx.cfg("missing").is_none());
    }

    #[test]
    fn program_hash_tracks_content() {
        let ctx1 = small_ctx();
        let p2 = parse_program("fn a() { b(); b(); } fn b() { }").unwrap();
        let ctx2 = AnalysisCtx::new(&p2);
        assert_ne!(ctx1.program_hash, ctx2.program_hash);
    }
}
