//! The shared analysis context — a thin façade over the [`QueryDb`].
//!
//! In the seed workspace every checker re-ran its own points-to analysis
//! and rebuilt its own call graph; later the context grew a string-keyed,
//! type-erased memo table (`ctx.memo("string", ...)`) that plugins stashed
//! precomputations in. Both are gone: an [`AnalysisCtx`] now *is* a typed
//! [`QueryDb`] (it derefs to one), constructed once per program and handed
//! to every checker. Whole-program artifacts — points-to results per
//! sensitivity, call graphs, per-function CFGs, SCC summaries — are
//! built-in queries computed on first demand; checker-owned
//! precomputations are [`Query`](crate::query::Query) impls in the checker
//! crates, demanded through [`QueryDb::get`] /
//! [`QueryDb::get_durable`]. The string-keyed `Any` entry point (and its
//! "memo key used with two different types" panic class) no longer exists.

use crate::persist::PersistLayer;
use crate::query::{InvalidationStats, QueryDb};
use ivy_analysis::pointsto::{ConstraintCache, SolveOptions};
use ivy_cmir::ast::Program;
use std::ops::Deref;
use std::sync::Arc;

/// Shared analysis state for one program: the query db plus construction
/// conveniences. Derefs to [`QueryDb`], so `ctx.program`,
/// `ctx.pointsto(..)`, `ctx.get::<Q>(..)` etc. all resolve on the db.
pub struct AnalysisCtx {
    db: QueryDb,
}

impl AnalysisCtx {
    /// Builds a context for a program (cheap: artifacts are lazy).
    pub fn new(program: &Program) -> AnalysisCtx {
        AnalysisCtx {
            db: QueryDb::new(program),
        }
    }

    /// The content hash a context for `program` would carry; computable
    /// without cloning the program (used for context-store lookups).
    pub fn hash_program(program: &Program) -> u64 {
        QueryDb::hash_program(program)
    }

    /// Builds a context with an already-computed program hash.
    pub fn with_hash(program: &Program, program_hash: u64) -> AnalysisCtx {
        AnalysisCtx {
            db: QueryDb::with_hash(program, program_hash),
        }
    }

    /// Shares an existing points-to constraint cache (builder style). The
    /// engine passes its own cache here so contexts for successive program
    /// states reuse each other's per-function constraint batches.
    pub fn with_pointsto_cache(mut self, cache: Arc<ConstraintCache>) -> AnalysisCtx {
        self.db = self.db.with_pointsto_cache(cache);
        self
    }

    /// Attaches a cross-process persist layer (builder style): durable
    /// queries reload from it instead of recomputing.
    pub fn with_persist(mut self, persist: Option<Arc<PersistLayer>>) -> AnalysisCtx {
        self.db = self.db.with_persist(persist);
        self
    }

    /// Sets how points-to solves run in this context (builder style); the
    /// engine routes its `--provenance` switch through here.
    pub fn with_solve_options(mut self, opts: SolveOptions) -> AnalysisCtx {
        self.db = self.db.with_solve_options(opts);
        self
    }

    /// Wraps an already-constructed query db (used by
    /// [`Engine::apply_edit`](crate::Engine::apply_edit) to promote the db
    /// an edit derived).
    pub fn from_db(db: QueryDb) -> AnalysisCtx {
        AnalysisCtx { db }
    }

    /// Derives a context for an edited program, invalidating only the
    /// queries the edit can reach through the recorded dependency edges
    /// (see [`QueryDb::apply_edit`]).
    pub fn apply_edit(&self, edited: &Program) -> (AnalysisCtx, InvalidationStats) {
        let (db, stats) = self.db.apply_edit(edited);
        (AnalysisCtx { db }, stats)
    }

    /// The underlying query db.
    pub fn db(&self) -> &QueryDb {
        &self.db
    }
}

impl Deref for AnalysisCtx {
    type Target = QueryDb;

    fn deref(&self) -> &QueryDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_analysis::pointsto::Sensitivity;
    use ivy_cmir::parser::parse_program;

    fn small_ctx() -> AnalysisCtx {
        let p = parse_program("fn a() { b(); } fn b() { }").unwrap();
        AnalysisCtx::new(&p)
    }

    #[test]
    fn artifacts_are_shared_instances() {
        let ctx = small_ctx();
        let p1 = ctx.pointsto(Sensitivity::Steensgaard);
        let p2 = ctx.pointsto(Sensitivity::Steensgaard);
        assert!(Arc::ptr_eq(&p1, &p2));
        let s = ctx.summaries(Sensitivity::Steensgaard);
        assert!(s.functions.contains_key("a"));
        assert!(ctx.cfg("a").is_some());
        assert!(ctx.cfg("missing").is_none());
    }

    #[test]
    fn program_hash_tracks_content() {
        let ctx1 = small_ctx();
        let p2 = parse_program("fn a() { b(); b(); } fn b() { }").unwrap();
        let ctx2 = AnalysisCtx::new(&p2);
        assert_ne!(ctx1.program_hash, ctx2.program_hash);
    }

    #[test]
    fn facade_exposes_the_query_graph() {
        let ctx = small_ctx();
        ctx.summaries(Sensitivity::Steensgaard);
        assert!(ctx.db().depends_on("engine/summaries", "engine/callgraph"));
    }
}
