//! The engine: bottom-up parallel scheduling of checker plugins with
//! incremental caching.
//!
//! [`Engine::analyze`] condenses the call graph into SCCs, orders the SCCs
//! into bottom-up levels (a level only calls into lower levels), and runs
//! every registered checker over every function of a level in parallel with
//! rayon. Per-function results are served from the shared
//! [`DiagnosticCache`] when the function's dependency cone and the
//! checker's context fingerprint are unchanged. Analysis contexts
//! themselves are reused across runs of byte-identical programs, so the
//! pipeline's analyze→fix→re-analyze loop stops paying for points-to and
//! call-graph construction twice.

use crate::cache::DiagnosticCache;
use crate::checker::{sensitivity_rank, Checker};
use crate::ctx::AnalysisCtx;
use crate::diag::{Diagnostic, EngineStats, Report};
use crate::persist::PersistLayer;
use crate::query::{InvalidationStats, Pointsto};
use ivy_analysis::pointsto::{ConstraintCache, Sensitivity};
use ivy_analysis::summary::{fnv1a, mix};
use ivy_cmir::ast::Program;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Default maximum number of analysis contexts kept resident for reuse.
const CTX_CACHE_CAP: usize = 16;

/// Payload version of persisted per-function diagnostic entries; bump when
/// the diagnostic encoding changes. Version 2 added structured evidence:
/// format-1 entries decode fine but would silently lack citations, so they
/// are obsoleted and recomputed.
const DIAG_FORMAT: u32 = 2;

/// Persist namespace for one checker's per-function diagnostics.
fn diag_namespace(checker: &str) -> String {
    format!("diag/{checker}")
}

/// Content-addressed persist key for one per-function checker result: the
/// cone hash covers the function and its transitive callees, the
/// fingerprint covers everything else the checker declared.
fn diag_key(cone: u64, fingerprint: u64) -> u64 {
    mix(mix(fnv1a(b"diag"), cone), fingerprint)
}

/// A shareable LRU store of analysis contexts, keyed by program hash.
/// Several engines (e.g. the stages of a pipeline, or every daemon
/// connection) share one store so a program analyzed by any of them hands
/// its memoized artifacts to all.
///
/// Residency is capped: beyond the capacity the least-recently-used
/// context is evicted (each slot anchors a program's whole memoized query
/// graph, so an uncapped store grows without bound in a long-lived
/// daemon). The seed behaviour — clearing the whole map when full — threw
/// away every hot context whenever one cold program arrived.
pub struct CtxStore {
    inner: Mutex<CtxStoreInner>,
    capacity: usize,
}

#[derive(Default)]
struct CtxStoreInner {
    /// hash → (context, last-use stamp).
    slots: HashMap<u64, (Arc<AnalysisCtx>, u64)>,
    tick: u64,
    evictions: u64,
    hits: u64,
    misses: u64,
}

impl Default for CtxStore {
    fn default() -> Self {
        CtxStore::new()
    }
}

impl CtxStore {
    /// A store with the default capacity (16 resident programs).
    pub fn new() -> CtxStore {
        CtxStore::with_capacity(CTX_CACHE_CAP)
    }

    /// A store holding at most `capacity` contexts (min 1).
    pub fn with_capacity(capacity: usize) -> CtxStore {
        CtxStore {
            inner: Mutex::new(CtxStoreInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Number of resident contexts.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// True when no context is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Contexts evicted over the store's lifetime.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// Lookups served by a resident context over the store's lifetime
    /// (counts [`CtxStore::get`] and [`CtxStore::get_or_insert_with`]).
    pub fn hits(&self) -> u64 {
        self.lock().hits
    }

    /// Lookups that found no resident context over the store's lifetime.
    pub fn misses(&self) -> u64 {
        self.lock().misses
    }

    /// True when a context for `hash` is resident (does not touch
    /// recency).
    pub fn contains(&self, hash: u64) -> bool {
        self.lock().slots.contains_key(&hash)
    }

    /// The resident context for `hash`, bumping its recency.
    pub fn get(&self, hash: u64) -> Option<Arc<AnalysisCtx>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.slots.get_mut(&hash).map(|(ctx, stamp)| {
            *stamp = tick;
            Arc::clone(ctx)
        });
        if found.is_some() {
            inner.hits += 1;
            ivy_telemetry::counter("ivy_engine_ctx_hits_total", 1);
        } else {
            inner.misses += 1;
            ivy_telemetry::counter("ivy_engine_ctx_misses_total", 1);
        }
        found
    }

    /// Returns the resident context for `hash`, or builds one with `make`
    /// and inserts it (evicting the least-recently-used context beyond
    /// capacity). The second element is true on a hit. The lock is held
    /// across `make`, so concurrent engines never build duplicate
    /// contexts for one program.
    pub fn get_or_insert_with(
        &self,
        hash: u64,
        make: impl FnOnce() -> Arc<AnalysisCtx>,
    ) -> (Arc<AnalysisCtx>, bool) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(found) = inner.slots.get_mut(&hash).map(|(ctx, stamp)| {
            *stamp = tick;
            Arc::clone(ctx)
        }) {
            inner.hits += 1;
            ivy_telemetry::counter("ivy_engine_ctx_hits_total", 1);
            return (found, true);
        }
        inner.misses += 1;
        ivy_telemetry::counter("ivy_engine_ctx_misses_total", 1);
        let ctx = make();
        inner.evict_beyond(self.capacity - 1);
        inner.slots.insert(hash, (Arc::clone(&ctx), tick));
        (ctx, false)
    }

    /// Inserts (or refreshes) a context, evicting LRU entries beyond
    /// capacity.
    pub fn insert(&self, hash: u64, ctx: Arc<AnalysisCtx>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.slots.get_mut(&hash) {
            *slot = (ctx, tick);
            return;
        }
        inner.evict_beyond(self.capacity - 1);
        inner.slots.insert(hash, (ctx, tick));
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CtxStoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl CtxStoreInner {
    /// Evicts least-recently-used slots until at most `keep` remain.
    fn evict_beyond(&mut self, keep: usize) {
        while self.slots.len() > keep {
            let Some((&victim, _)) = self.slots.iter().min_by_key(|(_, (_, stamp))| *stamp) else {
                return;
            };
            self.slots.remove(&victim);
            self.evictions += 1;
        }
    }
}

/// The analysis engine. Cheap to clone the configuration of (checkers are
/// shared `Arc`s, the cache is shared by design).
pub struct Engine {
    checkers: Vec<Arc<dyn Checker>>,
    threads: usize,
    cache: Arc<DiagnosticCache>,
    ctx_store: Arc<CtxStore>,
    pts_cache: Arc<ConstraintCache>,
    persist: Option<Arc<PersistLayer>>,
    trace_out: Option<std::path::PathBuf>,
    provenance: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with no checkers, default parallelism, and a fresh cache.
    pub fn new() -> Engine {
        Engine {
            checkers: Vec::new(),
            threads: 0,
            cache: Arc::new(DiagnosticCache::new()),
            ctx_store: Arc::new(CtxStore::new()),
            pts_cache: Arc::new(ConstraintCache::new()),
            persist: None,
            trace_out: None,
            provenance: false,
        }
    }

    /// Turns on derivation tracing: every context this engine builds solves
    /// points-to with a provenance arena attached, so `PointsToResult::why`
    /// can explain any fact. Provenance is also honored when
    /// `IVY_PROVENANCE` is set in the environment. Disabled-mode cost is
    /// one branch per derived fact.
    pub fn with_provenance(mut self, on: bool) -> Engine {
        self.provenance = on;
        self
    }

    /// True when this engine records derivation provenance.
    pub fn provenance_enabled(&self) -> bool {
        self.provenance
    }

    /// Registers a checker plugin (builder style).
    pub fn with_checker(mut self, checker: Arc<dyn Checker>) -> Engine {
        self.checkers.push(checker);
        self
    }

    /// Sets the worker thread count (0 = one per hardware thread).
    pub fn with_threads(mut self, threads: usize) -> Engine {
        self.threads = threads;
        self
    }

    /// Shares an existing diagnostic cache (e.g. across the engines of a
    /// pipeline, or across corpus analyses).
    pub fn with_cache(mut self, cache: Arc<DiagnosticCache>) -> Engine {
        self.cache = cache;
        self
    }

    /// Shares an existing context store (see [`CtxStore`]).
    pub fn with_ctx_store(mut self, store: Arc<CtxStore>) -> Engine {
        self.ctx_store = store;
        self
    }

    /// Shares an existing points-to constraint cache (e.g. across the
    /// engines of a pipeline), so every program state solves points-to
    /// incrementally from the batches its siblings already generated.
    pub fn with_pointsto_cache(mut self, cache: Arc<ConstraintCache>) -> Engine {
        self.pts_cache = cache;
        self
    }

    /// Attaches a cross-process persist layer: per-function diagnostics
    /// and every durable query result spill to it, and later runs — in
    /// this process or another — are served from it. Engine runs flush the
    /// layer when they finish.
    pub fn with_persist(mut self, persist: Arc<PersistLayer>) -> Engine {
        self.persist = Some(persist);
        self
    }

    /// Enables span tracing for the whole process and exports the recorded
    /// spans as Chrome trace-event JSON to `path` after every analysis this
    /// engine runs (the file accumulates the session and can be opened in
    /// `about://tracing` or Perfetto at any point).
    pub fn with_trace_out(mut self, path: impl Into<std::path::PathBuf>) -> Engine {
        ivy_telemetry::enable_spans();
        ivy_telemetry::enable_counters();
        self.trace_out = Some(path.into());
        self
    }

    /// The engine's persist layer, if one is attached.
    pub fn persist(&self) -> Option<Arc<PersistLayer>> {
        self.persist.clone()
    }

    /// The engine's points-to constraint cache.
    pub fn pointsto_cache(&self) -> Arc<ConstraintCache> {
        Arc::clone(&self.pts_cache)
    }

    /// The engine's diagnostic cache.
    pub fn cache(&self) -> Arc<DiagnosticCache> {
        Arc::clone(&self.cache)
    }

    /// The engine's context store.
    pub fn ctx_store(&self) -> Arc<CtxStore> {
        Arc::clone(&self.ctx_store)
    }

    /// The registered checkers.
    pub fn checkers(&self) -> &[Arc<dyn Checker>] {
        &self.checkers
    }

    /// The most precise points-to sensitivity any registered checker
    /// requires; also the precision of the scheduling call graph.
    pub fn required_sensitivity(&self) -> Sensitivity {
        self.checkers
            .iter()
            .map(|c| c.sensitivity())
            .max_by_key(|s| sensitivity_rank(*s))
            .unwrap_or(Sensitivity::Steensgaard)
    }

    /// Returns the shared analysis context for a program, reusing the one
    /// from a previous run when the program is byte-identical. Only the
    /// program hash is computed before the store lookup; the context (and
    /// its AST copy) is built on a miss.
    pub fn context_for(&self, program: &Program) -> (Arc<AnalysisCtx>, bool) {
        let hash = AnalysisCtx::hash_program(program);
        self.ctx_store.get_or_insert_with(hash, || {
            // The flag only ever widens the env-derived options: an engine
            // without the switch still honors IVY_PROVENANCE.
            let mut opts = ivy_analysis::pointsto::SolveOptions::from_env();
            opts.provenance |= self.provenance;
            Arc::new(
                AnalysisCtx::with_hash(program, hash)
                    .with_pointsto_cache(Arc::clone(&self.pts_cache))
                    .with_persist(self.persist.clone())
                    .with_solve_options(opts),
            )
        })
    }

    /// Analyzes a program with every registered checker.
    pub fn analyze(&self, program: &Program) -> Report {
        let (ctx, reused) = self.context_for(program);
        self.analyze_with_ctx(&ctx, reused)
    }

    /// Applies an edited program against a resident context:
    /// dependency-driven invalidation discards only the queries the edit
    /// can reach through the recorded edges, every other memoized result
    /// is carried into a context for the edited program, and that context
    /// is registered in the store so the next [`Engine::analyze`] of the
    /// edited program starts from it. Returns the new context and what the
    /// edit invalidated. A no-op edit returns the base context unchanged.
    ///
    /// This is the daemon's `notify_edit` path: a resident process keeps
    /// analysis state alive across edits instead of rebuilding a db per
    /// program state.
    ///
    /// Callers must not run this concurrently with analyses of the *base*
    /// context: the invalidation walk snapshots the base db's dependency
    /// edges and memo table, and a compute publishing its memo entry
    /// before its edges are recorded would be carried over as clean. The
    /// daemon serializes `notify_edit` against in-flight analyzes with a
    /// reader-writer gate for exactly this reason.
    pub fn apply_edit(
        &self,
        base: &Arc<AnalysisCtx>,
        edited: &Program,
    ) -> (Arc<AnalysisCtx>, InvalidationStats) {
        let hash = AnalysisCtx::hash_program(edited);
        if hash == base.program_hash {
            return (Arc::clone(base), InvalidationStats::default());
        }
        let (ctx, stats) = base.apply_edit(edited);
        let ctx = Arc::new(ctx);
        self.ctx_store.insert(hash, Arc::clone(&ctx));
        (ctx, stats)
    }

    /// Analyzes an already-constructed context. `ctx_reused` is only
    /// recorded in the stats.
    pub fn analyze_with_ctx(&self, ctx: &Arc<AnalysisCtx>, ctx_reused: bool) -> Report {
        let _analyze_span = ivy_telemetry::span(
            "engine/analyze",
            format!("analyze:{:016x}", ctx.program_hash),
        );
        let sensitivity = self.required_sensitivity();
        let summaries = ctx.summaries(sensitivity);
        let condensation = &summaries.condensation;

        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let persist_hits = AtomicU64::new(0);
        let persist_misses = AtomicU64::new(0);
        let mut diagnostics: Vec<Diagnostic> = Vec::new();

        // Program-level diagnostics (composite/global annotation errors and
        // the like) have no scheduled function to ride on.
        for checker in &self.checkers {
            diagnostics.extend(checker.check_program(ctx));
        }

        let pool = ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("thread pool builds");
        pool.install(|| {
            // Bottom-up over the condensation: each level only calls into
            // completed levels, so its functions are independent units.
            for (depth, level) in condensation.levels.iter().enumerate() {
                let wave: Vec<&str> = level
                    .iter()
                    .flat_map(|&scc| condensation.sccs[scc].iter())
                    .map(String::as_str)
                    .collect();
                let _wave_span = ivy_telemetry::span(
                    "engine/wave",
                    format!("wave:{depth} ({} sccs, {} fns)", level.len(), wave.len()),
                );
                let results: Vec<Vec<Diagnostic>> = wave
                    .par_iter()
                    .map(|name| {
                        let Some(func) = ctx.program.function(name) else {
                            return Vec::new();
                        };
                        let cone = summaries
                            .cone_hash(name)
                            .expect("scheduled function has a summary");
                        let mut out = Vec::new();
                        for checker in &self.checkers {
                            let fingerprint = checker.context_fingerprint(ctx, func);
                            let key = (checker.name(), cone, fingerprint);
                            if let Some(cached) = self.cache.get(&key) {
                                hits.fetch_add(1, Ordering::Relaxed);
                                out.extend(cached.iter().cloned());
                                continue;
                            }
                            // In-memory miss: the persist layer may have the
                            // result from an earlier process.
                            if let Some(reloaded) =
                                self.persisted_diags(checker.name(), cone, fingerprint)
                            {
                                persist_hits.fetch_add(1, Ordering::Relaxed);
                                self.cache.put(key, reloaded.clone());
                                out.extend(reloaded);
                                continue;
                            }
                            if self.persist.is_some() {
                                persist_misses.fetch_add(1, Ordering::Relaxed);
                            }
                            misses.fetch_add(1, Ordering::Relaxed);
                            let check_span = ivy_telemetry::span(
                                "engine/checker",
                                format!("{}:{name}", checker.name()),
                            );
                            let check_start =
                                check_span.is_recording().then(std::time::Instant::now);
                            let fresh = checker.check_function(ctx, func);
                            drop(check_span);
                            if let Some(start) = check_start {
                                ivy_telemetry::counter_labeled(
                                    "ivy_checker_micros_total",
                                    "checker",
                                    checker.name(),
                                    start.elapsed().as_micros() as u64,
                                );
                            }
                            if let Some(layer) = &self.persist {
                                layer.put(
                                    &diag_namespace(checker.name()),
                                    DIAG_FORMAT,
                                    diag_key(cone, fingerprint),
                                    Value::Array(fresh.iter().map(Diagnostic::to_value).collect()),
                                );
                            }
                            self.cache.put(key, fresh.clone());
                            out.extend(fresh);
                        }
                        out
                    })
                    .collect();
                diagnostics.extend(results.into_iter().flatten());
            }
        });

        // Points-to substrate statistics, peeked rather than demanded: a
        // cold run computed the result above (the summaries depend on it),
        // but a run served entirely from the persist layer never solves
        // points-to — forcing a solve just for the stats would throw the
        // warm start away. For a reused context the numbers describe the
        // run that first built the result.
        let pts = ctx.peek::<Pointsto>(&sensitivity);
        let mut stats = EngineStats {
            functions: ctx.program.functions.len(),
            checkers: self.checkers.len(),
            sccs: condensation.sccs.len(),
            levels: condensation.levels.len(),
            cache_hits: hits.into_inner(),
            cache_misses: misses.into_inner(),
            persist_hits: persist_hits.into_inner(),
            persist_misses: persist_misses.into_inner(),
            ctx_reused,
            ..EngineStats::default()
        };
        if let Some(pts) = pts {
            stats.pointsto_initial_constraints = pts.initial_constraints;
            stats.pointsto_constraints = pts.constraint_count;
            stats.pointsto_batches_reused = pts.batches_reused;
            stats.pointsto_batches_generated = pts.batches_generated;
            stats.pointsto_solve_mode = pts.mode.name().to_string();
            stats.pointsto_threads = pts.threads_used as u64;
            stats.pointsto_delta_deleted = pts.delta_deleted;
            stats.pointsto_delta_rederived = pts.delta_rederived;
            stats.provenance_facts = pts.provenance_facts() as u64;
            stats.provenance_bytes = pts.provenance_bytes() as u64;
            ivy_telemetry::counter("ivy_provenance_facts_total", stats.provenance_facts);
            ivy_telemetry::counter("ivy_provenance_bytes_total", stats.provenance_bytes);
        }
        // Cache traffic counters are cumulative across the process — the
        // daemon's `metrics` verb reads them back out of the recorder.
        ivy_telemetry::counter("ivy_engine_cache_hits_total", stats.cache_hits);
        ivy_telemetry::counter("ivy_engine_cache_misses_total", stats.cache_misses);
        ivy_telemetry::counter("ivy_engine_persist_hits_total", stats.persist_hits);
        ivy_telemetry::counter("ivy_engine_persist_misses_total", stats.persist_misses);
        ivy_telemetry::counter(
            "ivy_pointsto_batches_reused_total",
            stats.pointsto_batches_reused as u64,
        );
        ivy_telemetry::counter(
            "ivy_pointsto_batches_generated_total",
            stats.pointsto_batches_generated as u64,
        );
        // Make this run's results durable before handing the report back.
        if let Some(layer) = &self.persist {
            if let Err(err) = layer.flush() {
                stats.persist_flush_errors += 1;
                ivy_telemetry::counter("ivy_engine_persist_flush_errors_total", 1);
                // Log the first failure per process; the counter (and the
                // per-run stat) keeps recording the rest without spamming a
                // long-lived daemon's stderr on a full or read-only disk.
                static FLUSH_ERROR_LOGGED: std::sync::Once = std::sync::Once::new();
                FLUSH_ERROR_LOGGED
                    .call_once(|| eprintln!("ivy-engine: persist flush failed: {err}"));
            }
            // After the flush so this run's compaction is included.
            stats.persist_pruned = layer.pruned();
        }
        if let Some(path) = &self.trace_out {
            if let Err(err) = ivy_telemetry::write_chrome_trace(path) {
                eprintln!(
                    "ivy-engine: trace export to {} failed: {err}",
                    path.display()
                );
            }
        }
        Report::new(diagnostics, stats)
    }

    /// Reloads one per-function checker result from the persist layer, if
    /// it is attached and has a decodable entry.
    fn persisted_diags(
        &self,
        checker: &str,
        cone: u64,
        fingerprint: u64,
    ) -> Option<Vec<Diagnostic>> {
        let layer = self.persist.as_ref()?;
        let raw = layer.get(
            &diag_namespace(checker),
            DIAG_FORMAT,
            diag_key(cone, fingerprint),
        )?;
        raw.as_array()?
            .iter()
            .map(Diagnostic::from_value)
            .collect::<Option<Vec<_>>>()
    }

    /// Cumulative number of resident contexts evicted from the store.
    pub fn ctx_evictions(&self) -> u64 {
        self.ctx_store.evictions()
    }

    /// Fleet/batch mode: analyzes many program variants concurrently, with
    /// the diagnostic cache shared across variants — generated kernels
    /// share most functions, so later variants are served largely from the
    /// cache filled by earlier ones. Reports come back in input order.
    pub fn analyze_corpus(&self, programs: &[Program]) -> Vec<Report> {
        let pool = ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("thread pool builds");
        pool.install(|| {
            programs
                .par_iter()
                .map(|p| {
                    let (ctx, reused) = self.context_for(p);
                    // Variant analyses run single-threaded internally; the
                    // parallelism budget is spent across variants here.
                    let inner = Engine {
                        checkers: self.checkers.clone(),
                        threads: 1,
                        cache: Arc::clone(&self.cache),
                        ctx_store: Arc::clone(&self.ctx_store),
                        pts_cache: Arc::clone(&self.pts_cache),
                        persist: self.persist.clone(),
                        trace_out: None,
                        provenance: self.provenance,
                    };
                    inner.analyze_with_ctx(&ctx, reused)
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    fn program_named(i: usize) -> Program {
        parse_program(&format!("fn f{i}() -> u32 {{ return {i}; }}")).unwrap()
    }

    #[test]
    fn ctx_store_evicts_in_lru_order() {
        let store = CtxStore::with_capacity(3);
        let engine = Engine::new().with_ctx_store(Arc::new(store));
        let programs: Vec<Program> = (0..4).map(program_named).collect();
        let hashes: Vec<u64> = programs.iter().map(AnalysisCtx::hash_program).collect();

        for p in &programs[..3] {
            engine.context_for(p);
        }
        assert_eq!(engine.ctx_store().len(), 3);
        assert_eq!(engine.ctx_evictions(), 0);

        // Touch the oldest so it is no longer the LRU victim.
        let (_, hit) = engine.context_for(&programs[0]);
        assert!(hit);

        // Inserting a fourth evicts exactly the least-recently-used
        // context (program 1), not the whole store and not program 0.
        engine.context_for(&programs[3]);
        let store = engine.ctx_store();
        assert_eq!(store.len(), 3);
        assert_eq!(engine.ctx_evictions(), 1);
        assert!(store.contains(hashes[0]), "recently-touched survives");
        assert!(!store.contains(hashes[1]), "LRU slot evicted");
        assert!(store.contains(hashes[2]));
        assert!(store.contains(hashes[3]));

        // Eviction does not break reuse: a resident program is a hit.
        let (_, hit) = engine.context_for(&programs[2]);
        assert!(hit);
        // An evicted program rebuilds (miss) and evicts the next LRU.
        let (_, hit) = engine.context_for(&programs[1]);
        assert!(!hit);
        assert_eq!(engine.ctx_evictions(), 2);
    }

    #[test]
    fn ctx_store_counts_hits_and_misses() {
        let store = Arc::new(CtxStore::with_capacity(4));
        let engine = Engine::new().with_ctx_store(Arc::clone(&store));
        let program = program_named(0);
        engine.context_for(&program); // miss
        engine.context_for(&program); // hit
        assert_eq!(store.misses(), 1);
        assert_eq!(store.hits(), 1);
        // Plain `get` counts too.
        assert!(store.get(AnalysisCtx::hash_program(&program)).is_some());
        assert!(store.get(0xdead_beef).is_none());
        assert_eq!(store.hits(), 2);
        assert_eq!(store.misses(), 2);
    }

    #[test]
    fn flush_io_errors_surface_in_engine_stats() {
        let root = std::env::temp_dir().join(format!("ivy-flush-err-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        // Make the summaries namespace unwritable: occupy its shard
        // *directory* path with a plain file so the flush's
        // `create_dir_all` fails even when the test runs as root (a
        // read-only mode bit alone would not stop uid 0), and drop the
        // root's write bit for unprivileged runs.
        std::fs::write(root.join("engine-summaries"), "not a directory").unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            let _ = std::fs::set_permissions(&root, std::fs::Permissions::from_mode(0o555));
        }

        let layer = Arc::new(PersistLayer::open(&root).expect("existing dir opens"));
        let engine = Engine::new().with_persist(layer);
        let report = engine.analyze(&program_named(0));
        assert_eq!(
            report.stats.persist_flush_errors, 1,
            "a failed flush must be visible in the run stats"
        );

        // A healthy layer reports zero.
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            let _ = std::fs::set_permissions(&root, std::fs::Permissions::from_mode(0o755));
        }
        let _ = std::fs::remove_dir_all(&root);
        let layer = Arc::new(PersistLayer::open(&root).unwrap());
        let engine = Engine::new().with_persist(layer);
        let report = engine.analyze(&program_named(1));
        assert_eq!(report.stats.persist_flush_errors, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn apply_edit_registers_through_the_lru_store() {
        let store = Arc::new(CtxStore::with_capacity(2));
        let engine = Engine::new().with_ctx_store(Arc::clone(&store));
        let base_p = program_named(0);
        let (base, _) = engine.context_for(&base_p);
        let edited = program_named(1);
        let (ctx, _) = engine.apply_edit(&base, &edited);
        assert_eq!(ctx.program_hash, AnalysisCtx::hash_program(&edited));
        assert_eq!(store.len(), 2);
        // A third program evicts the LRU (the base).
        engine.context_for(&program_named(2));
        assert_eq!(store.evictions(), 1);
        assert!(!store.contains(base.program_hash));
    }
}
