//! The checker plugin interface.
//!
//! Every analysis tool registers with the engine as a [`Checker`]: a name, a
//! required points-to [`Sensitivity`], and a per-function entry point that
//! reads shared state from the [`AnalysisCtx`] and returns [`Diagnostic`]s.
//! Scheduling a checker per *function* (rather than per program, as the seed
//! pipeline did) is what lets the engine parallelize across functions and
//! cache results across runs.

use crate::ctx::AnalysisCtx;
use crate::diag::Diagnostic;
use ivy_analysis::pointsto::Sensitivity;
use ivy_cmir::ast::Function;

/// An analysis plugin.
pub trait Checker: Send + Sync {
    /// Stable name; used as the cache namespace and the `checker` field of
    /// produced diagnostics.
    fn name(&self) -> &'static str;

    /// The points-to precision this checker needs from the shared context.
    /// The engine computes the scheduling call graph at the most precise
    /// level any registered checker requires.
    fn sensitivity(&self) -> Sensitivity {
        Sensitivity::Steensgaard
    }

    /// A fingerprint of everything this checker's per-function result
    /// depends on *beyond* the function's own transitive-callee cone:
    /// configuration, the type environment, caller-derived context, ...
    ///
    /// The incremental cache key for `(checker, function)` is the pair of
    /// the function's cone hash and this fingerprint; a checker whose
    /// results depend on state not captured by either must fold that state
    /// in here, or stale diagnostics will be replayed.
    fn context_fingerprint(&self, _ctx: &AnalysisCtx, _func: &Function) -> u64 {
        0
    }

    /// Checks one function. Called bottom-up over the condensed call graph,
    /// possibly from many threads at once; implementations must only go
    /// through `ctx` for shared state.
    fn check_function(&self, ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic>;

    /// Program-level diagnostics that are not attributable to any scheduled
    /// function (e.g. annotation errors on composite fields or globals).
    /// Called once per analysis, before the per-function waves; not cached
    /// (implementations should derive these from context-memoized state).
    fn check_program(&self, _ctx: &AnalysisCtx) -> Vec<Diagnostic> {
        Vec::new()
    }
}

/// Orders sensitivities by precision so the engine can take the max the
/// registered checkers require.
pub fn sensitivity_rank(s: Sensitivity) -> u8 {
    match s {
        Sensitivity::Steensgaard => 0,
        Sensitivity::Andersen => 1,
        Sensitivity::AndersenField => 2,
    }
}
