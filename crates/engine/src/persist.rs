//! Cross-process persistence for durable query results.
//!
//! A [`PersistLayer`] is a directory (by convention `target/ivy-cache/`) of
//! versioned JSON namespaces. Each [`DurableQuery`](crate::query::DurableQuery)
//! (and the engine's per-function diagnostic results) owns one namespace;
//! entries inside a namespace are keyed by 16-hex-digit content hashes, so
//! a key is valid exactly as long as the program content it was derived
//! from — there is no invalidation protocol, only content addressing.
//!
//! **Sharding.** A namespace is a *directory* of per-writer shard files:
//! every layer writes only its own `<namespace>/<writer>.json` shard and
//! merges every shard (plus the legacy single-file layout) when the
//! namespace is first read. Concurrent writers — several daemon workers, a
//! batch run racing a daemon — therefore never clobber each other: the old
//! single-file layout was safe (tmp+rename) but last-flush-wins, silently
//! discarding whatever the losing process had computed. Content addressing
//! makes the merge trivial: two shards that both carry a key derived it
//! from identical content, so union is lossless and order only breaks ties
//! between byte-identical values. A shard carries only the keys its writer
//! *owns* — written by that process, carried in its own previous shard, or
//! adopted from the legacy single-file layout — so a warm reader never
//! replicates other writers' shards into its own.
//!
//! **Compaction.** Namespaces grow monotonically across edits (every edit
//! mints new content-addressed keys; old ones are never overwritten). Once
//! a namespace's merged image exceeds the compaction threshold, a flush
//! drops every entry this process neither read nor wrote — live keys were
//! touched by the current program state, stale ones belong to content that
//! no longer exists. Other writers' shards are not rewritten; their live
//! entries re-merge on the next load.
//!
//! The layer is deliberately forgiving on the read side: a missing
//! directory, an unparsable shard, a file with the wrong container format,
//! or a namespace written by a different `FORMAT_VERSION` of its query is
//! *ignored* (treated as empty and later overwritten), never an error —
//! a corrupt cache must cost a recomputation, not a crash.
//!
//! File layout:
//!
//! ```text
//! target/ivy-cache/
//!   engine-summaries/            one directory per namespace...
//!     w41123.json                ...one shard per writer:
//!     w41300.json                {"format":1,"namespace":"engine/summaries",
//!   diag-deputy/                  "version":<query FORMAT_VERSION>,
//!     w41123.json                 "entries":{"<16-hex key>": <value>}}
//!   blockstop-report.json        legacy pre-sharding file: read + adopted,
//!   ...                          retired once migrated into a shard
//! ```

use ivy_cmir::span::Pos;
use ivy_cmir::Span;
use serde_json::{Map, Value};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Version of the namespace *container* format (the envelope around the
/// entries). Per-namespace payload versions are the owning query's
/// `FORMAT_VERSION` and are checked independently.
pub const PERSIST_FORMAT: u32 = 1;

/// Default compaction threshold: namespaces at or below this many merged
/// entries are never pruned.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 4096;

/// One loaded namespace: its payload version, the merged entries of every
/// shard, which keys this process has read or written (the live set
/// compaction preserves), and which keys this *writer* owns — written by
/// this process, carried in its own previous shard, or adopted from the
/// legacy single-file layout. Flushes emit only owned keys, so a warm
/// reader never replicates other writers' shards into its own.
struct Namespace {
    version: u32,
    entries: HashMap<String, Value>,
    touched: HashSet<String>,
    own: HashSet<String>,
    /// Keys adopted from the legacy single-file layout; once a flush has
    /// written them all into this writer's shard, the legacy file is
    /// removed so later writers stop re-adopting (and re-replicating) it.
    legacy: HashSet<String>,
    dirty: bool,
}

/// A directory of versioned, namespaced, content-addressed JSON entries
/// shared across processes.
///
/// All reads and writes go through an in-memory image; [`PersistLayer::flush`]
/// writes dirty namespaces back to this writer's shard files (via a temp
/// file + rename, so a crashed writer leaves the previous shard intact
/// rather than a torn one).
pub struct PersistLayer {
    root: PathBuf,
    writer: String,
    compact_threshold: usize,
    namespaces: Mutex<HashMap<String, Namespace>>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    pruned: AtomicU64,
    flush_seq: AtomicU64,
}

/// Turns a namespace name into a safe file stem (`diag/deputy` →
/// `diag-deputy`).
fn file_stem(namespace: &str) -> String {
    namespace
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Formats a durable key as its on-disk entry key.
pub fn hex_key(key: u64) -> String {
    format!("{key:016x}")
}

// ---- encoding helpers shared by durable query implementations ----------

/// Encodes a span as the JSON object used across persisted results.
pub fn span_to_value(span: &Span) -> Value {
    let mut s = Map::new();
    s.insert("line".into(), Value::from(span.start.line));
    s.insert("col".into(), Value::from(span.start.col));
    s.insert("end_line".into(), Value::from(span.end.line));
    s.insert("end_col".into(), Value::from(span.end.col));
    Value::Object(s)
}

/// Decodes a span encoded by [`span_to_value`].
pub fn span_from_value(v: &Value) -> Option<Span> {
    let field = |key: &str| v.get(key).and_then(Value::as_u64).map(|n| n as u32);
    Some(Span::new(
        Pos::new(field("line")?, field("col")?),
        Pos::new(field("end_line")?, field("end_col")?),
    ))
}

/// Encodes an iterator of strings as a JSON array.
pub fn strings_to_value<'a>(items: impl IntoIterator<Item = &'a String>) -> Value {
    Value::Array(items.into_iter().map(|s| Value::from(s.as_str())).collect())
}

/// Decodes a JSON array of strings as an ordered set.
pub fn string_set_from_value(v: &Value) -> Option<BTreeSet<String>> {
    v.as_array()?
        .iter()
        .map(|s| s.as_str().map(String::from))
        .collect()
}

/// Decodes a JSON array of strings preserving order.
pub fn string_vec_from_value(v: &Value) -> Option<Vec<String>> {
    v.as_array()?
        .iter()
        .map(|s| s.as_str().map(String::from))
        .collect()
}

impl PersistLayer {
    /// Opens (creating if needed) a persist directory. Namespace shards
    /// are loaded and merged lazily on first access. The writer identity
    /// defaults to `w<pid>` — distinct per concurrent process, so
    /// concurrent flushes land in distinct shard files.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<PersistLayer> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(PersistLayer {
            root,
            writer: format!("w{}", std::process::id()),
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            namespaces: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            flush_seq: AtomicU64::new(0),
        })
    }

    /// Overrides the writer identity (builder style). Two layers sharing a
    /// root must use distinct writer ids to get distinct shards; the
    /// default is already distinct across processes, so this is for
    /// several writers *inside* one process (daemon worker pools, tests).
    pub fn with_writer_id(mut self, writer: impl Into<String>) -> PersistLayer {
        self.writer = file_stem(&writer.into());
        self
    }

    /// Overrides the compaction threshold (builder style): namespaces
    /// whose merged image exceeds `threshold` entries drop untouched
    /// entries on flush.
    pub fn with_compaction_threshold(mut self, threshold: usize) -> PersistLayer {
        self.compact_threshold = threshold;
        self
    }

    /// The directory this layer persists to.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// This layer's writer identity (its shard file stem).
    pub fn writer_id(&self) -> &str {
        &self.writer
    }

    /// The legacy pre-sharding single file of a namespace (read-only).
    fn legacy_file_of(&self, namespace: &str) -> PathBuf {
        self.root.join(format!("{}.json", file_stem(namespace)))
    }

    /// The shard directory of a namespace.
    fn dir_of(&self, namespace: &str) -> PathBuf {
        self.root.join(file_stem(namespace))
    }

    /// The shard file this layer writes for a namespace.
    fn shard_of(&self, namespace: &str) -> PathBuf {
        self.dir_of(namespace).join(format!("{}.json", self.writer))
    }

    /// Merges one shard (or legacy) file into `entries`, tolerating every
    /// corruption mode by merging nothing; returns the keys it merged.
    fn merge_file(
        path: &Path,
        namespace: &str,
        version: u32,
        entries: &mut HashMap<String, Value>,
    ) -> Vec<String> {
        let Ok(text) = fs::read_to_string(path) else {
            return Vec::new();
        };
        let Ok(value) = serde_json::from_str(&text) else {
            return Vec::new(); // unparsable: ignore, will be overwritten
        };
        let format_ok =
            value.get("format").and_then(Value::as_u64) == Some(u64::from(PERSIST_FORMAT));
        let namespace_ok = value.get("namespace").and_then(Value::as_str) == Some(namespace);
        let version_ok = value.get("version").and_then(Value::as_u64) == Some(u64::from(version));
        if !format_ok || !namespace_ok || !version_ok {
            return Vec::new(); // stale or foreign: recompute rather than mis-decode
        }
        let Some(loaded) = value.get("entries").and_then(Value::as_object) else {
            return Vec::new();
        };
        let mut keys = Vec::with_capacity(loaded.len());
        for (k, v) in loaded.iter() {
            entries.insert(k.clone(), v.clone());
            keys.push(k.clone());
        }
        keys
    }

    /// Loads a namespace: the legacy single file first, then every shard
    /// in sorted filename order (deterministic merge; conflicting keys are
    /// byte-identical by content addressing, so order only breaks ties).
    /// Keys from this writer's own shard — and from the legacy file, which
    /// is never written again and would otherwise strand its data — become
    /// *owned* and are carried forward by future flushes.
    fn load(&self, namespace: &str, version: u32) -> Namespace {
        let mut entries = HashMap::new();
        let legacy: HashSet<String> = Self::merge_file(
            &self.legacy_file_of(namespace),
            namespace,
            version,
            &mut entries,
        )
        .into_iter()
        .collect();
        let mut own: HashSet<String> = legacy.clone();
        let own_shard = self.shard_of(namespace);
        if let Ok(dir) = fs::read_dir(self.dir_of(namespace)) {
            let mut shards: Vec<PathBuf> = dir
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "json"))
                .collect();
            shards.sort();
            for shard in &shards {
                let keys = Self::merge_file(shard, namespace, version, &mut entries);
                if *shard == own_shard {
                    own.extend(keys);
                }
            }
        }
        Namespace {
            version,
            entries,
            touched: HashSet::new(),
            own,
            legacy,
            dirty: false,
        }
    }

    fn with_namespace<T>(
        &self,
        namespace: &str,
        version: u32,
        f: impl FnOnce(&mut Namespace) -> T,
    ) -> T {
        let mut map = self
            .namespaces
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let ns = map
            .entry(namespace.to_string())
            .or_insert_with(|| self.load(namespace, version));
        if ns.version != version {
            // The same namespace demanded at a new payload version: drop the
            // stale image (its shard will be overwritten on the next flush).
            *ns = Namespace {
                version,
                entries: HashMap::new(),
                touched: HashSet::new(),
                own: HashSet::new(),
                legacy: HashSet::new(),
                dirty: ns.dirty,
            };
        }
        f(ns)
    }

    /// Looks up an entry, counting the outcome. A hit marks the key live
    /// for compaction.
    pub fn get(&self, namespace: &str, version: u32, key: u64) -> Option<Value> {
        let found = self.with_namespace(namespace, version, |ns| {
            let key = hex_key(key);
            let found = ns.entries.get(&key).cloned();
            if found.is_some() {
                ns.touched.insert(key);
            }
            found
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores an entry (in memory; [`PersistLayer::flush`] writes it out).
    pub fn put(&self, namespace: &str, version: u32, key: u64, value: Value) {
        self.with_namespace(namespace, version, |ns| {
            let key = hex_key(key);
            ns.touched.insert(key.clone());
            ns.own.insert(key.clone());
            ns.entries.insert(key, value);
            ns.dirty = true;
        });
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of entries currently held for a namespace.
    pub fn entry_count(&self, namespace: &str, version: u32) -> usize {
        self.with_namespace(namespace, version, |ns| ns.entries.len())
    }

    /// Writes every dirty namespace back to this writer's shard file;
    /// returns the number of shards written. Namespaces over the
    /// compaction threshold first drop every entry this process never
    /// touched (see the module docs).
    pub fn flush(&self) -> io::Result<usize> {
        let mut map = self
            .namespaces
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut written = 0;
        for (name, ns) in map.iter_mut() {
            if !ns.dirty {
                continue;
            }
            if ns.entries.len() > self.compact_threshold {
                let before = ns.entries.len();
                let touched = std::mem::take(&mut ns.touched);
                ns.entries.retain(|k, _| touched.contains(k));
                ns.touched = touched;
                self.pruned
                    .fetch_add((before - ns.entries.len()) as u64, Ordering::Relaxed);
            }
            // Only owned keys go into this writer's shard: replicating the
            // merged union would make every warm reader's shard a full
            // copy of every other writer's, multiplying the directory by
            // the writer count for no information.
            let mut entries = Map::new();
            for (k, v) in &ns.entries {
                if ns.own.contains(k) {
                    entries.insert(k.clone(), v.clone());
                }
            }
            let mut root = Map::new();
            root.insert("format".into(), Value::from(PERSIST_FORMAT));
            root.insert("namespace".into(), Value::from(name.as_str()));
            root.insert("version".into(), Value::from(ns.version));
            root.insert("entries".into(), Value::Object(entries));
            let text = serde_json::to_string_pretty(&Value::Object(root)).expect("serializes");
            let path = self.shard_of(name);
            fs::create_dir_all(self.dir_of(name))?;
            // The temp name is unique per process and per flush: two
            // processes sharing one directory must never interleave a
            // write and a rename of the same temp file, or the "last
            // flush wins, never a torn file" guarantee breaks. (With
            // per-writer shards the temp is only contended when two
            // layers share a writer id, but the uniqueness is kept as a
            // belt-and-braces property.)
            let tmp = path.with_extension(format!(
                "json.{}.{}.tmp",
                std::process::id(),
                self.flush_seq.fetch_add(1, Ordering::Relaxed)
            ));
            fs::write(&tmp, text)?;
            fs::rename(&tmp, &path)?;
            // One-time migration: once every adopted legacy key is safely
            // in this writer's shard, retire the legacy file so later
            // writers stop re-adopting (and re-replicating) its contents.
            // Compaction may have dropped some adopted keys as stale — the
            // legacy file then survives as their only home.
            if !ns.legacy.is_empty() && ns.legacy.iter().all(|k| ns.entries.contains_key(k)) {
                let _ = fs::remove_file(self.legacy_file_of(name));
                ns.legacy.clear();
            }
            ns.dirty = false;
            written += 1;
        }
        Ok(written)
    }

    /// Lifetime entry lookups served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime entry lookups missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime entries stored.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Lifetime entries dropped by compaction.
    pub fn pruned(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ivy-persist-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrips_across_reopen() {
        let root = temp_root("roundtrip");
        let layer = PersistLayer::open(&root).unwrap();
        layer.put("test/ns", 1, 0xabcd, Value::from("payload"));
        assert_eq!(
            layer.get("test/ns", 1, 0xabcd).unwrap().as_str(),
            Some("payload")
        );
        layer.flush().unwrap();

        let reopened = PersistLayer::open(&root).unwrap();
        assert_eq!(
            reopened.get("test/ns", 1, 0xabcd).unwrap().as_str(),
            Some("payload")
        );
        assert_eq!(reopened.hits(), 1);
        assert!(reopened.get("test/ns", 1, 0x1234).is_none());
        assert_eq!(reopened.misses(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn version_mismatch_and_corruption_are_ignored() {
        let root = temp_root("corrupt");
        let layer = PersistLayer::open(&root).unwrap();
        layer.put("test/ns", 1, 7, Value::from(1u64));
        layer.flush().unwrap();

        // Payload-version bump: entries written at v1 are invisible at v2.
        let reopened = PersistLayer::open(&root).unwrap();
        assert!(reopened.get("test/ns", 2, 7).is_none());

        // Outright corruption: an unparsable shard reads as empty, not a
        // crash.
        let shard = root
            .join("test-ns")
            .join(format!("w{}.json", std::process::id()));
        assert!(shard.exists(), "flush wrote this writer's shard");
        fs::write(&shard, "{ not json").unwrap();
        let corrupted = PersistLayer::open(&root).unwrap();
        assert!(corrupted.get("test/ns", 1, 7).is_none());
        // And the namespace is still writable afterwards.
        corrupted.put("test/ns", 1, 8, Value::from(2u64));
        corrupted.flush().unwrap();
        let healed = PersistLayer::open(&root).unwrap();
        assert_eq!(healed.get("test/ns", 1, 8).unwrap().as_u64(), Some(2));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn namespaces_map_to_distinct_sanitized_shard_dirs() {
        let root = temp_root("files");
        let layer = PersistLayer::open(&root).unwrap();
        layer.put("diag/deputy", 1, 1, Value::from(1u64));
        layer.put("diag/ccount", 1, 1, Value::from(2u64));
        assert_eq!(layer.flush().unwrap(), 2);
        let shard = format!("w{}.json", std::process::id());
        assert!(root.join("diag-deputy").join(&shard).exists());
        assert!(root.join("diag-ccount").join(&shard).exists());
        // Clean flushes write nothing.
        assert_eq!(layer.flush().unwrap(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn legacy_single_file_layout_is_still_read() {
        let root = temp_root("legacy");
        fs::create_dir_all(&root).unwrap();
        fs::write(
            root.join("test-ns.json"),
            "{\"format\":1,\"namespace\":\"test/ns\",\"version\":1,\
             \"entries\":{\"0000000000000009\":9}}",
        )
        .unwrap();
        let layer = PersistLayer::open(&root).unwrap();
        assert_eq!(layer.get("test/ns", 1, 9).unwrap().as_u64(), Some(9));
        // A flush migrates the adopted legacy keys into this writer's
        // shard and then *retires* the legacy file, so later writers stop
        // re-adopting (and re-replicating) its contents.
        layer.put("test/ns", 1, 10, Value::from(10u64));
        layer.flush().unwrap();
        assert!(
            !root.join("test-ns.json").exists(),
            "fully-migrated legacy file is retired"
        );
        let reopened = PersistLayer::open(&root).unwrap();
        assert_eq!(reopened.get("test/ns", 1, 9).unwrap().as_u64(), Some(9));
        assert_eq!(reopened.get("test/ns", 1, 10).unwrap().as_u64(), Some(10));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_writers_flush_to_distinct_shards_and_merge_losslessly() {
        let root = temp_root("shards");
        // Two writers over one root, each oblivious to the other's
        // in-memory state — the racing-daemon-workers scenario. Explicit
        // writer ids because both live in this test process.
        let a = PersistLayer::open(&root)
            .unwrap()
            .with_writer_id("worker-a");
        let b = PersistLayer::open(&root)
            .unwrap()
            .with_writer_id("worker-b");
        a.put("test/ns", 1, 1, Value::from("from-a"));
        b.put("test/ns", 1, 2, Value::from("from-b"));
        // Flush order must not matter: each writes only its own shard.
        b.flush().unwrap();
        a.flush().unwrap();
        assert!(root.join("test-ns").join("worker-a.json").exists());
        assert!(root.join("test-ns").join("worker-b.json").exists());

        // A later reader merges both shards: nothing was clobbered.
        let merged = PersistLayer::open(&root).unwrap();
        assert_eq!(
            merged.get("test/ns", 1, 1).unwrap().as_str(),
            Some("from-a")
        );
        assert_eq!(
            merged.get("test/ns", 1, 2).unwrap().as_str(),
            Some("from-b")
        );
        assert_eq!(merged.entry_count("test/ns", 1), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn warm_readers_do_not_replicate_other_writers_shards() {
        let root = temp_root("no-replication");
        let producer = PersistLayer::open(&root)
            .unwrap()
            .with_writer_id("producer");
        for key in 0..20u64 {
            producer.put("test/ns", 1, key, Value::from(key));
        }
        producer.flush().unwrap();

        // A warm reader consumes the producer's entries and mints one of
        // its own: its shard must carry only what it owns.
        let reader = PersistLayer::open(&root).unwrap().with_writer_id("reader");
        for key in 0..20u64 {
            assert!(reader.get("test/ns", 1, key).is_some());
        }
        reader.put("test/ns", 1, 100, Value::from(100u64));
        reader.flush().unwrap();
        let shard = fs::read_to_string(root.join("test-ns").join("reader.json")).unwrap();
        let parsed = serde_json::from_str(&shard).unwrap();
        assert_eq!(
            parsed.get("entries").unwrap().as_object().unwrap().len(),
            1,
            "the reader's shard must hold only its own entry"
        );
        // Nothing was lost: a later merge still sees everything.
        let merged = PersistLayer::open(&root).unwrap();
        assert_eq!(merged.entry_count("test/ns", 1), 21);

        // A writer's own entries survive its restarts through its shard.
        let restarted = PersistLayer::open(&root).unwrap().with_writer_id("reader");
        restarted.put("test/ns", 1, 101, Value::from(101u64));
        restarted.flush().unwrap();
        let shard = fs::read_to_string(root.join("test-ns").join("reader.json")).unwrap();
        let parsed = serde_json::from_str(&shard).unwrap();
        assert_eq!(
            parsed.get("entries").unwrap().as_object().unwrap().len(),
            2,
            "restart carries the writer's previous shard forward"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn compaction_prunes_untouched_entries_over_the_threshold() {
        let root = temp_root("compact");
        let layer = PersistLayer::open(&root)
            .unwrap()
            .with_writer_id("compactor");
        for key in 0..6u64 {
            layer.put("test/ns", 1, key, Value::from(key));
        }
        layer.flush().unwrap();

        // A later process touches two old keys and mints one new one; the
        // namespace is over threshold, so the flush drops the other four.
        let reopened = PersistLayer::open(&root)
            .unwrap()
            .with_writer_id("compactor")
            .with_compaction_threshold(4);
        assert_eq!(reopened.entry_count("test/ns", 1), 6);
        assert!(reopened.get("test/ns", 1, 0).is_some());
        assert!(reopened.get("test/ns", 1, 5).is_some());
        reopened.put("test/ns", 1, 100, Value::from(100u64));
        reopened.flush().unwrap();
        assert_eq!(reopened.pruned(), 4);
        assert_eq!(reopened.entry_count("test/ns", 1), 3);

        // Live keys survived the prune; stale ones are gone.
        let after = PersistLayer::open(&root).unwrap();
        assert!(after.get("test/ns", 1, 0).is_some());
        assert!(after.get("test/ns", 1, 5).is_some());
        assert!(after.get("test/ns", 1, 100).is_some());
        assert!(after.get("test/ns", 1, 1).is_none());
        assert!(after.get("test/ns", 1, 4).is_none());

        // Under the (default) threshold nothing is ever pruned.
        let lazy = PersistLayer::open(&root).unwrap().with_writer_id("lazy");
        lazy.put("test/ns", 1, 200, Value::from(200u64));
        lazy.flush().unwrap();
        assert_eq!(lazy.pruned(), 0);
        let _ = fs::remove_dir_all(&root);
    }
}
