//! Cross-process persistence for durable query results.
//!
//! A [`PersistLayer`] is a directory (by convention `target/ivy-cache/`) of
//! versioned JSON namespace files. Each [`DurableQuery`](crate::query::DurableQuery)
//! (and the engine's per-function diagnostic results) owns one namespace;
//! entries inside a namespace are keyed by 16-hex-digit content hashes, so
//! a key is valid exactly as long as the program content it was derived
//! from — there is no invalidation protocol, only content addressing.
//!
//! The layer is deliberately forgiving on the read side: a missing
//! directory, an unparsable file, a file with the wrong container format,
//! or a namespace written by a different `FORMAT_VERSION` of its query is
//! *ignored* (treated as empty and later overwritten), never an error —
//! a corrupt cache must cost a recomputation, not a crash.
//!
//! File layout:
//!
//! ```text
//! target/ivy-cache/
//!   engine-summaries.json        {"format":1,"namespace":"engine/summaries",
//!   blockstop-report.json         "version":<query FORMAT_VERSION>,
//!   diag-deputy.json              "entries":{"<16-hex key>": <value>}}
//!   ...
//! ```

use ivy_cmir::span::Pos;
use ivy_cmir::Span;
use serde_json::{Map, Value};
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version of the namespace *container* format (the envelope around the
/// entries). Per-namespace payload versions are the owning query's
/// `FORMAT_VERSION` and are checked independently.
pub const PERSIST_FORMAT: u32 = 1;

/// One loaded namespace: its payload version and entries.
struct Namespace {
    version: u32,
    entries: HashMap<String, Value>,
    dirty: bool,
}

/// A directory of versioned, namespaced, content-addressed JSON entries
/// shared across processes.
///
/// All reads and writes go through an in-memory image; [`PersistLayer::flush`]
/// writes dirty namespaces back to disk (via a temp file + rename, so a
/// crashed writer leaves the previous file intact rather than a torn one).
pub struct PersistLayer {
    root: PathBuf,
    namespaces: Mutex<HashMap<String, Namespace>>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    flush_seq: AtomicU64,
}

/// Turns a namespace name into a safe file stem (`diag/deputy` →
/// `diag-deputy`).
fn file_stem(namespace: &str) -> String {
    namespace
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Formats a durable key as its on-disk entry key.
pub fn hex_key(key: u64) -> String {
    format!("{key:016x}")
}

// ---- encoding helpers shared by durable query implementations ----------

/// Encodes a span as the JSON object used across persisted results.
pub fn span_to_value(span: &Span) -> Value {
    let mut s = Map::new();
    s.insert("line".into(), Value::from(span.start.line));
    s.insert("col".into(), Value::from(span.start.col));
    s.insert("end_line".into(), Value::from(span.end.line));
    s.insert("end_col".into(), Value::from(span.end.col));
    Value::Object(s)
}

/// Decodes a span encoded by [`span_to_value`].
pub fn span_from_value(v: &Value) -> Option<Span> {
    let field = |key: &str| v.get(key).and_then(Value::as_u64).map(|n| n as u32);
    Some(Span::new(
        Pos::new(field("line")?, field("col")?),
        Pos::new(field("end_line")?, field("end_col")?),
    ))
}

/// Encodes an iterator of strings as a JSON array.
pub fn strings_to_value<'a>(items: impl IntoIterator<Item = &'a String>) -> Value {
    Value::Array(items.into_iter().map(|s| Value::from(s.as_str())).collect())
}

/// Decodes a JSON array of strings as an ordered set.
pub fn string_set_from_value(v: &Value) -> Option<BTreeSet<String>> {
    v.as_array()?
        .iter()
        .map(|s| s.as_str().map(String::from))
        .collect()
}

/// Decodes a JSON array of strings preserving order.
pub fn string_vec_from_value(v: &Value) -> Option<Vec<String>> {
    v.as_array()?
        .iter()
        .map(|s| s.as_str().map(String::from))
        .collect()
}

impl PersistLayer {
    /// Opens (creating if needed) a persist directory. Namespace files are
    /// loaded lazily on first access.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<PersistLayer> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(PersistLayer {
            root,
            namespaces: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flush_seq: AtomicU64::new(0),
        })
    }

    /// The directory this layer persists to.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_of(&self, namespace: &str) -> PathBuf {
        self.root.join(format!("{}.json", file_stem(namespace)))
    }

    /// Loads a namespace from disk, tolerating every corruption mode by
    /// returning an empty namespace instead.
    fn load(&self, namespace: &str, version: u32) -> Namespace {
        let empty = Namespace {
            version,
            entries: HashMap::new(),
            dirty: false,
        };
        let Ok(text) = fs::read_to_string(self.file_of(namespace)) else {
            return empty;
        };
        let Ok(value) = serde_json::from_str(&text) else {
            return empty; // unparsable: ignore, will be overwritten
        };
        let format_ok =
            value.get("format").and_then(Value::as_u64) == Some(u64::from(PERSIST_FORMAT));
        let namespace_ok = value.get("namespace").and_then(Value::as_str) == Some(namespace);
        let version_ok = value.get("version").and_then(Value::as_u64) == Some(u64::from(version));
        if !format_ok || !namespace_ok || !version_ok {
            return empty; // stale or foreign: recompute rather than mis-decode
        }
        let Some(entries) = value.get("entries").and_then(Value::as_object) else {
            return empty;
        };
        Namespace {
            version,
            entries: entries
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            dirty: false,
        }
    }

    fn with_namespace<T>(
        &self,
        namespace: &str,
        version: u32,
        f: impl FnOnce(&mut Namespace) -> T,
    ) -> T {
        let mut map = self.namespaces.lock().expect("persist namespaces poisoned");
        let ns = map
            .entry(namespace.to_string())
            .or_insert_with(|| self.load(namespace, version));
        if ns.version != version {
            // The same namespace demanded at a new payload version: drop the
            // stale image (its file will be overwritten on the next flush).
            *ns = Namespace {
                version,
                entries: HashMap::new(),
                dirty: ns.dirty,
            };
        }
        f(ns)
    }

    /// Looks up an entry, counting the outcome.
    pub fn get(&self, namespace: &str, version: u32, key: u64) -> Option<Value> {
        let found = self.with_namespace(namespace, version, |ns| {
            ns.entries.get(&hex_key(key)).cloned()
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores an entry (in memory; [`PersistLayer::flush`] writes it out).
    pub fn put(&self, namespace: &str, version: u32, key: u64, value: Value) {
        self.with_namespace(namespace, version, |ns| {
            ns.entries.insert(hex_key(key), value);
            ns.dirty = true;
        });
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of entries currently held for a namespace.
    pub fn entry_count(&self, namespace: &str, version: u32) -> usize {
        self.with_namespace(namespace, version, |ns| ns.entries.len())
    }

    /// Writes every dirty namespace back to its file; returns the number of
    /// files written.
    pub fn flush(&self) -> io::Result<usize> {
        let mut map = self.namespaces.lock().expect("persist namespaces poisoned");
        let mut written = 0;
        for (name, ns) in map.iter_mut() {
            if !ns.dirty {
                continue;
            }
            let mut entries = Map::new();
            for (k, v) in &ns.entries {
                entries.insert(k.clone(), v.clone());
            }
            let mut root = Map::new();
            root.insert("format".into(), Value::from(PERSIST_FORMAT));
            root.insert("namespace".into(), Value::from(name.as_str()));
            root.insert("version".into(), Value::from(ns.version));
            root.insert("entries".into(), Value::Object(entries));
            let text = serde_json::to_string_pretty(&Value::Object(root)).expect("serializes");
            let path = self.file_of(name);
            // The temp name is unique per process and per flush: two
            // processes sharing one directory must never interleave a
            // write and a rename of the same temp file, or the "last
            // flush wins, never a torn file" guarantee breaks.
            let tmp = path.with_extension(format!(
                "json.{}.{}.tmp",
                std::process::id(),
                self.flush_seq.fetch_add(1, Ordering::Relaxed)
            ));
            fs::write(&tmp, text)?;
            fs::rename(&tmp, &path)?;
            ns.dirty = false;
            written += 1;
        }
        Ok(written)
    }

    /// Lifetime entry lookups served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime entry lookups missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime entries stored.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ivy-persist-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrips_across_reopen() {
        let root = temp_root("roundtrip");
        let layer = PersistLayer::open(&root).unwrap();
        layer.put("test/ns", 1, 0xabcd, Value::from("payload"));
        assert_eq!(
            layer.get("test/ns", 1, 0xabcd).unwrap().as_str(),
            Some("payload")
        );
        layer.flush().unwrap();

        let reopened = PersistLayer::open(&root).unwrap();
        assert_eq!(
            reopened.get("test/ns", 1, 0xabcd).unwrap().as_str(),
            Some("payload")
        );
        assert_eq!(reopened.hits(), 1);
        assert!(reopened.get("test/ns", 1, 0x1234).is_none());
        assert_eq!(reopened.misses(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn version_mismatch_and_corruption_are_ignored() {
        let root = temp_root("corrupt");
        let layer = PersistLayer::open(&root).unwrap();
        layer.put("test/ns", 1, 7, Value::from(1u64));
        layer.flush().unwrap();

        // Payload-version bump: entries written at v1 are invisible at v2.
        let reopened = PersistLayer::open(&root).unwrap();
        assert!(reopened.get("test/ns", 2, 7).is_none());

        // Outright corruption: unparsable file reads as empty, not a crash.
        fs::write(root.join("test-ns.json"), "{ not json").unwrap();
        let corrupted = PersistLayer::open(&root).unwrap();
        assert!(corrupted.get("test/ns", 1, 7).is_none());
        // And the namespace is still writable afterwards.
        corrupted.put("test/ns", 1, 8, Value::from(2u64));
        corrupted.flush().unwrap();
        let healed = PersistLayer::open(&root).unwrap();
        assert_eq!(healed.get("test/ns", 1, 8).unwrap().as_u64(), Some(2));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn namespaces_map_to_distinct_sanitized_files() {
        let root = temp_root("files");
        let layer = PersistLayer::open(&root).unwrap();
        layer.put("diag/deputy", 1, 1, Value::from(1u64));
        layer.put("diag/ccount", 1, 1, Value::from(2u64));
        assert_eq!(layer.flush().unwrap(), 2);
        assert!(root.join("diag-deputy.json").exists());
        assert!(root.join("diag-ccount.json").exists());
        // Clean flushes write nothing.
        assert_eq!(layer.flush().unwrap(), 0);
        let _ = fs::remove_dir_all(&root);
    }
}
