//! The unified diagnostic model shared by every checker plugin.
//!
//! Checkers return plain `Vec<Diagnostic>`; the engine merges, orders, and
//! serializes them. Ordering is total and content-based (never dependent on
//! scheduling), so a parallel run and a single-threaded run of the same
//! program produce byte-identical reports — the determinism contract the
//! engine's integration tests pin down.

use ivy_cmir::Span;
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// A defect the checker believes is real (sound finding).
    Error,
    /// A possible defect or a soundness caveat.
    Warning,
    /// Instrumentation / conversion information.
    Info,
}

impl Severity {
    /// Stable lower-case name used in serialized output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }

    /// SARIF `level` value.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "note",
        }
    }

    /// Parses the stable lower-case name back (inverse of
    /// [`Severity::name`]); used when reloading persisted diagnostics.
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "error" => Some(Severity::Error),
            "warning" => Some(Severity::Warning),
            "info" => Some(Severity::Info),
            _ => None,
        }
    }
}

/// One structured fact citation attached to a diagnostic: the analysis
/// result the checker relied on when it decided to report. Evidence makes
/// a finding auditable — the daemon's `explain` verb and the oracle's
/// violation reports start from these citations, and the SARIF rendering
/// carries them as `relatedLocations`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Evidence {
    /// What kind of fact is cited: `"pts"` (a points-to fact),
    /// `"indirect-targets"` (a resolved indirect call), `"alloc-site"`
    /// (a heap allocation the fact traces to), or `"atomic-path"`
    /// (a call path inside an atomic region).
    pub kind: String,
    /// The subject of the fact, e.g. `"vfs_read::ops->read"` or a
    /// location rendered by the points-to layer.
    pub subject: String,
    /// The fact's content, e.g. the resolved target list or the call
    /// chain, rendered human-readably.
    pub detail: String,
}

impl Evidence {
    /// A citation with all three parts.
    pub fn new(
        kind: impl Into<String>,
        subject: impl Into<String>,
        detail: impl Into<String>,
    ) -> Evidence {
        Evidence {
            kind: kind.into(),
            subject: subject.into(),
            detail: detail.into(),
        }
    }

    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("kind".into(), Value::from(self.kind.as_str()));
        m.insert("subject".into(), Value::from(self.subject.as_str()));
        m.insert("detail".into(), Value::from(self.detail.as_str()));
        Value::Object(m)
    }

    fn from_value(v: &Value) -> Option<Evidence> {
        let text = |key: &str| v.get(key).and_then(Value::as_str).map(String::from);
        Some(Evidence {
            kind: text("kind")?,
            subject: text("subject")?,
            detail: text("detail")?,
        })
    }
}

/// One finding from one checker about one function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Name of the checker that produced this (e.g. `"blockstop"`).
    pub checker: String,
    /// Stable rule identifier, `checker/rule` style.
    pub code: String,
    /// Function the diagnostic is attached to.
    pub function: String,
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source span, when one is known.
    pub span: Option<Span>,
    /// A suggested fix, when the checker knows one.
    pub fix_hint: Option<String>,
    /// The analysis facts the checker relied on (empty when the finding
    /// needed none beyond the function's own syntax).
    pub evidence: Vec<Evidence>,
}

impl Diagnostic {
    /// The total content ordering used for report stability.
    fn sort_key(&self) -> (&str, &str, Severity, &str, &str) {
        (
            &self.function,
            &self.code,
            self.severity,
            &self.message,
            &self.checker,
        )
    }

    /// Serializes to the stable JSON object used by reports and the
    /// persist layer.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("checker".into(), Value::from(self.checker.as_str()));
        m.insert("code".into(), Value::from(self.code.as_str()));
        m.insert("function".into(), Value::from(self.function.as_str()));
        m.insert("severity".into(), Value::from(self.severity.name()));
        m.insert("message".into(), Value::from(self.message.as_str()));
        if let Some(span) = &self.span {
            m.insert("span".into(), crate::persist::span_to_value(span));
        }
        if let Some(hint) = &self.fix_hint {
            m.insert("fix_hint".into(), Value::from(hint.as_str()));
        }
        if !self.evidence.is_empty() {
            m.insert(
                "evidence".into(),
                Value::Array(self.evidence.iter().map(Evidence::to_value).collect()),
            );
        }
        Value::Object(m)
    }

    /// Decodes a diagnostic from its [`Diagnostic::to_value`] form; `None`
    /// rejects malformed input (the persist layer then recomputes).
    pub fn from_value(v: &Value) -> Option<Diagnostic> {
        let text = |key: &str| v.get(key).and_then(Value::as_str).map(String::from);
        // A present-but-undecodable span rejects the whole entry (so the
        // persist layer recomputes) rather than silently dropping the span
        // and breaking warm/cold report byte-identity.
        let span = match v.get("span") {
            Some(raw) => Some(crate::persist::span_from_value(raw)?),
            None => None,
        };
        // Like the span: present-but-undecodable evidence rejects the
        // whole entry so the persist layer recomputes it.
        let evidence = match v.get("evidence") {
            Some(raw) => raw
                .as_array()?
                .iter()
                .map(Evidence::from_value)
                .collect::<Option<Vec<Evidence>>>()?,
            None => Vec::new(),
        };
        Some(Diagnostic {
            checker: text("checker")?,
            code: text("code")?,
            function: text("function")?,
            severity: Severity::from_name(v.get("severity")?.as_str()?)?,
            message: text("message")?,
            span,
            fix_hint: text("fix_hint"),
            evidence,
        })
    }
}

/// Run statistics reported alongside the diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Functions scheduled (defined and extern).
    pub functions: usize,
    /// Registered checkers.
    pub checkers: usize,
    /// SCCs in the condensed call graph.
    pub sccs: usize,
    /// Bottom-up parallel waves.
    pub levels: usize,
    /// Per-function results served from the in-memory incremental cache in
    /// this run.
    pub cache_hits: u64,
    /// Per-function results computed fresh in this run (served by neither
    /// the in-memory cache nor the persist layer).
    pub cache_misses: u64,
    /// Per-function results served from the cross-process persist layer in
    /// this run.
    pub persist_hits: u64,
    /// Per-function results that consulted the persist layer and missed
    /// (0 when no persist layer is attached).
    pub persist_misses: u64,
    /// Persist-layer entries dropped by compaction over the layer's
    /// lifetime (0 when no persist layer is attached). Surfaced so fleet
    /// operators can see GC working without attaching a debugger.
    pub persist_pruned: u64,
    /// Persist-layer flushes that failed with an I/O error in this run
    /// (0 when no persist layer is attached). A non-zero value means this
    /// run's results did not all become durable — the analysis itself is
    /// unaffected, but a later cold process will recompute.
    pub persist_flush_errors: u64,
    /// Whether the analysis context itself was reused from a previous run
    /// of an identical program.
    pub ctx_reused: bool,
    /// Points-to constraints generated from syntax (before indirect-call
    /// resolution) at the scheduling sensitivity.
    pub pointsto_initial_constraints: usize,
    /// Total points-to constraints solved, including indirect-call
    /// bindings, at the scheduling sensitivity.
    pub pointsto_constraints: usize,
    /// Per-function points-to constraint batches served from the shared
    /// constraint cache when this context's points-to was first solved.
    pub pointsto_batches_reused: usize,
    /// Per-function points-to constraint batches generated fresh.
    pub pointsto_batches_generated: usize,
    /// How the scheduling points-to fixpoint was computed: `"cold"`,
    /// `"incremental-repropagate"`, or `"delta-repair"` (empty when the
    /// run was served entirely from the persist layer and never solved).
    pub pointsto_solve_mode: String,
    /// Worker threads the points-to solve used (1 = serial).
    pub pointsto_threads: u64,
    /// Facts discarded by delta repair's deletion phase (0 unless the
    /// solve mode is `"delta-repair"`).
    pub pointsto_delta_deleted: u64,
    /// Delta locations re-propagated while repairing (0 unless the solve
    /// mode is `"delta-repair"`).
    pub pointsto_delta_rederived: u64,
    /// Derivation steps the provenance arena recorded for the scheduling
    /// points-to solve (0 when provenance was off).
    pub provenance_facts: u64,
    /// Approximate bytes held by the provenance arena (0 when off).
    pub provenance_bytes: u64,
}

impl EngineStats {
    /// Serializes to the stable JSON object used by reports and the daemon
    /// protocol.
    pub fn to_value(&self) -> Value {
        let mut stats = Map::new();
        stats.insert("functions".into(), Value::from(self.functions));
        stats.insert("checkers".into(), Value::from(self.checkers));
        stats.insert("sccs".into(), Value::from(self.sccs));
        stats.insert("levels".into(), Value::from(self.levels));
        stats.insert("cache_hits".into(), Value::from(self.cache_hits));
        stats.insert("cache_misses".into(), Value::from(self.cache_misses));
        stats.insert("persist_hits".into(), Value::from(self.persist_hits));
        stats.insert("persist_misses".into(), Value::from(self.persist_misses));
        stats.insert("persist_pruned".into(), Value::from(self.persist_pruned));
        stats.insert(
            "persist_flush_errors".into(),
            Value::from(self.persist_flush_errors),
        );
        stats.insert("ctx_reused".into(), Value::from(self.ctx_reused));
        stats.insert(
            "pointsto_initial_constraints".into(),
            Value::from(self.pointsto_initial_constraints),
        );
        stats.insert(
            "pointsto_constraints".into(),
            Value::from(self.pointsto_constraints),
        );
        stats.insert(
            "pointsto_batches_reused".into(),
            Value::from(self.pointsto_batches_reused),
        );
        stats.insert(
            "pointsto_batches_generated".into(),
            Value::from(self.pointsto_batches_generated),
        );
        stats.insert(
            "pointsto_solve_mode".into(),
            Value::from(self.pointsto_solve_mode.clone()),
        );
        stats.insert(
            "pointsto_threads".into(),
            Value::from(self.pointsto_threads),
        );
        stats.insert(
            "pointsto_delta_deleted".into(),
            Value::from(self.pointsto_delta_deleted),
        );
        stats.insert(
            "pointsto_delta_rederived".into(),
            Value::from(self.pointsto_delta_rederived),
        );
        stats.insert(
            "provenance_facts".into(),
            Value::from(self.provenance_facts),
        );
        stats.insert(
            "provenance_bytes".into(),
            Value::from(self.provenance_bytes),
        );
        Value::Object(stats)
    }

    /// Decodes stats from their [`EngineStats::to_value`] form; `None`
    /// rejects malformed input.
    pub fn from_value(v: &Value) -> Option<EngineStats> {
        let count = |key: &str| v.get(key).and_then(Value::as_u64);
        let size = |key: &str| count(key).map(|n| n as usize);
        Some(EngineStats {
            functions: size("functions")?,
            checkers: size("checkers")?,
            sccs: size("sccs")?,
            levels: size("levels")?,
            cache_hits: count("cache_hits")?,
            cache_misses: count("cache_misses")?,
            persist_hits: count("persist_hits")?,
            persist_misses: count("persist_misses")?,
            // Absent in pre-oracle encodings; default rather than reject.
            persist_pruned: count("persist_pruned").unwrap_or(0),
            // Absent in pre-telemetry encodings; default rather than reject.
            persist_flush_errors: count("persist_flush_errors").unwrap_or(0),
            ctx_reused: v.get("ctx_reused")?.as_bool()?,
            pointsto_initial_constraints: size("pointsto_initial_constraints")?,
            pointsto_constraints: size("pointsto_constraints")?,
            pointsto_batches_reused: size("pointsto_batches_reused")?,
            pointsto_batches_generated: size("pointsto_batches_generated")?,
            // Absent in pre-wavefront encodings; default rather than reject.
            pointsto_solve_mode: v
                .get("pointsto_solve_mode")
                .and_then(Value::as_str)
                .unwrap_or("cold")
                .to_string(),
            pointsto_threads: count("pointsto_threads").unwrap_or(1),
            pointsto_delta_deleted: count("pointsto_delta_deleted").unwrap_or(0),
            pointsto_delta_rederived: count("pointsto_delta_rederived").unwrap_or(0),
            // Absent in pre-provenance encodings; default rather than reject.
            provenance_facts: count("provenance_facts").unwrap_or(0),
            provenance_bytes: count("provenance_bytes").unwrap_or(0),
        })
    }

    /// Fraction of per-function checker results served from the in-memory
    /// cache (persist-served results count toward the denominator only).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses + self.persist_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of per-function checker results served from the
    /// cross-process persist layer.
    pub fn persist_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses + self.persist_hits;
        if total == 0 {
            0.0
        } else {
            self.persist_hits as f64 / total as f64
        }
    }
}

/// The merged result of one engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// All diagnostics in stable content order.
    pub diagnostics: Vec<Diagnostic>,
    /// Run statistics.
    pub stats: EngineStats,
}

impl Report {
    /// Builds a report from unordered diagnostics, establishing the stable
    /// order.
    pub fn new(mut diagnostics: Vec<Diagnostic>, stats: EngineStats) -> Report {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Report { diagnostics, stats }
    }

    /// Diagnostics from one checker.
    pub fn by_checker(&self, checker: &str) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.checker == checker)
            .collect()
    }

    /// Diagnostic counts per severity.
    pub fn severity_counts(&self) -> BTreeMap<Severity, usize> {
        let mut out = BTreeMap::new();
        for d in &self.diagnostics {
            *out.entry(d.severity).or_insert(0) += 1;
        }
        out
    }

    /// The diagnostics as a JSON array (stable: content-ordered, sorted
    /// keys). This deliberately excludes the run statistics, so two runs
    /// that found the same things serialize identically regardless of
    /// thread count or cache temperature.
    pub fn diagnostics_json(&self) -> String {
        let items: Vec<Value> = self.diagnostics.iter().map(|d| d.to_value()).collect();
        serde_json::to_string_pretty(&Value::Array(items)).expect("serializes")
    }

    /// Full report as JSON: diagnostics plus run statistics.
    pub fn to_json(&self) -> String {
        let mut root = Map::new();
        root.insert(
            "diagnostics".into(),
            Value::Array(self.diagnostics.iter().map(|d| d.to_value()).collect()),
        );
        root.insert("stats".into(), self.stats.to_value());
        serde_json::to_string_pretty(&Value::Object(root)).expect("serializes")
    }

    /// A SARIF-style serialization (one run, one driver per checker rule).
    /// Stable for the same reasons as [`Report::diagnostics_json`].
    pub fn to_sarif(&self) -> String {
        let mut rules: BTreeMap<&str, ()> = BTreeMap::new();
        for d in &self.diagnostics {
            rules.insert(&d.code, ());
        }
        let rules: Vec<Value> = rules
            .keys()
            .map(|code| {
                let mut r = Map::new();
                r.insert("id".into(), Value::from(*code));
                Value::Object(r)
            })
            .collect();

        let results: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                let mut msg = Map::new();
                msg.insert("text".into(), Value::from(d.message.as_str()));
                let mut loc_l = Map::new();
                loc_l.insert("logicalName".into(), Value::from(d.function.as_str()));
                if let Some(span) = &d.span {
                    let mut region = Map::new();
                    region.insert("startLine".into(), Value::from(span.start.line));
                    region.insert("startColumn".into(), Value::from(span.start.col));
                    loc_l.insert("region".into(), Value::Object(region));
                }
                let mut loc = Map::new();
                loc.insert("logicalLocation".into(), Value::Object(loc_l));
                let mut r = Map::new();
                r.insert("ruleId".into(), Value::from(d.code.as_str()));
                r.insert("level".into(), Value::from(d.severity.sarif_level()));
                r.insert("message".into(), Value::Object(msg));
                r.insert("locations".into(), Value::Array(vec![Value::Object(loc)]));
                if !d.evidence.is_empty() {
                    let related: Vec<Value> = d
                        .evidence
                        .iter()
                        .map(|e| {
                            let mut msg = Map::new();
                            msg.insert(
                                "text".into(),
                                Value::from(format!("{}: {} — {}", e.kind, e.subject, e.detail)),
                            );
                            let mut loc_l = Map::new();
                            loc_l.insert("logicalName".into(), Value::from(e.subject.as_str()));
                            let mut rl = Map::new();
                            rl.insert("message".into(), Value::Object(msg));
                            rl.insert("logicalLocation".into(), Value::Object(loc_l));
                            Value::Object(rl)
                        })
                        .collect();
                    r.insert("relatedLocations".into(), Value::Array(related));
                }
                if let Some(hint) = &d.fix_hint {
                    let mut fix = Map::new();
                    fix.insert("text".into(), Value::from(hint.as_str()));
                    r.insert("fix".into(), Value::Object(fix));
                }
                Value::Object(r)
            })
            .collect();

        let mut driver = Map::new();
        driver.insert("name".into(), Value::from("ivy-engine"));
        driver.insert("rules".into(), Value::Array(rules));
        let mut tool = Map::new();
        tool.insert("driver".into(), Value::Object(driver));
        let mut run = Map::new();
        run.insert("tool".into(), Value::Object(tool));
        run.insert("results".into(), Value::Array(results));
        let mut root = Map::new();
        root.insert("version".into(), Value::from("2.1.0"));
        root.insert(
            "$schema".into(),
            Value::from("https://json.schemastore.org/sarif-2.1.0.json"),
        );
        root.insert("runs".into(), Value::Array(vec![Value::Object(run)]));
        serde_json::to_string_pretty(&Value::Object(root)).expect("serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(function: &str, code: &str, msg: &str) -> Diagnostic {
        Diagnostic {
            checker: code.split('/').next().unwrap().to_string(),
            code: code.to_string(),
            function: function.to_string(),
            severity: Severity::Error,
            message: msg.to_string(),
            span: None,
            fix_hint: None,
            evidence: Vec::new(),
        }
    }

    #[test]
    fn report_order_is_input_order_independent() {
        let a = Report::new(
            vec![
                diag("f", "c/x", "m1"),
                diag("a", "c/y", "m2"),
                diag("a", "c/x", "m3"),
            ],
            EngineStats::default(),
        );
        let b = Report::new(
            vec![
                diag("a", "c/x", "m3"),
                diag("f", "c/x", "m1"),
                diag("a", "c/y", "m2"),
            ],
            EngineStats::default(),
        );
        assert_eq!(a.diagnostics, b.diagnostics);
        assert_eq!(a.diagnostics_json(), b.diagnostics_json());
    }

    #[test]
    fn diagnostic_value_roundtrip_is_exact() {
        use ivy_cmir::span::Pos;
        let mut d = diag("f", "deputy/type-error", "bad cast");
        d.severity = Severity::Warning;
        d.span = Some(Span::new(Pos::new(12, 5), Pos::new(12, 30)));
        d.fix_hint = Some("annotate the pointer".into());
        d.evidence = vec![
            Evidence::new("pts", "f::p", "may point to: global buf"),
            Evidence::new("indirect-targets", "f::ops->read", "ext2_read, pipe_read"),
        ];
        assert_eq!(Diagnostic::from_value(&d.to_value()).unwrap(), d);
        // Malformed evidence rejects the entry (recompute, don't drop).
        let mut v = d.to_value();
        if let Value::Object(m) = &mut v {
            m.insert("evidence".into(), Value::from("nope"));
        }
        assert!(Diagnostic::from_value(&v).is_none());
        // Spanless/hintless diagnostics roundtrip too.
        let bare = diag("g", "c/x", "m");
        assert_eq!(Diagnostic::from_value(&bare.to_value()).unwrap(), bare);
        // Malformed input is rejected, not mis-decoded.
        assert!(Diagnostic::from_value(&Value::from("nope")).is_none());
    }

    #[test]
    fn engine_stats_roundtrip_through_their_value_form() {
        let stats = EngineStats {
            functions: 12,
            checkers: 3,
            sccs: 9,
            levels: 4,
            cache_hits: 30,
            cache_misses: 6,
            persist_hits: 2,
            persist_misses: 1,
            persist_pruned: 5,
            persist_flush_errors: 1,
            ctx_reused: true,
            pointsto_initial_constraints: 100,
            pointsto_constraints: 140,
            pointsto_batches_reused: 11,
            pointsto_batches_generated: 1,
            pointsto_solve_mode: "delta-repair".into(),
            pointsto_threads: 4,
            pointsto_delta_deleted: 7,
            pointsto_delta_rederived: 19,
            provenance_facts: 321,
            provenance_bytes: 4096,
        };
        assert_eq!(EngineStats::from_value(&stats.to_value()).unwrap(), stats);
        assert!(EngineStats::from_value(&Value::from("nope")).is_none());
    }

    #[test]
    fn serializations_parse_back() {
        let mut d = diag("f", "blockstop/atomic-call", "boom");
        d.evidence = vec![Evidence::new("atomic-path", "f", "f -> g -> kmalloc")];
        let r = Report::new(vec![d], EngineStats::default());
        assert!(serde_json::from_str(&r.diagnostics_json()).is_ok());
        assert!(serde_json::from_str(&r.to_json()).is_ok());
        let sarif: Value = serde_json::from_str(&r.to_sarif()).unwrap();
        assert_eq!(sarif.get("version").unwrap().as_str().unwrap(), "2.1.0");
        // Evidence rides along as SARIF relatedLocations.
        let related = sarif
            .get("runs")
            .and_then(|r| r.as_array()?.first()?.get("results"))
            .and_then(|r| r.as_array()?.first()?.get("relatedLocations"))
            .and_then(|r| r.as_array()?.first().cloned())
            .expect("evidence renders as relatedLocations");
        assert_eq!(
            related
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Value::as_str)
                .unwrap(),
            "atomic-path: f — f -> g -> kmalloc"
        );
        assert_eq!(
            related
                .get("logicalLocation")
                .and_then(|l| l.get("logicalName"))
                .and_then(Value::as_str)
                .unwrap(),
            "f"
        );
    }
}
