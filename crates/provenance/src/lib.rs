//! Derivation traces for points-to facts.
//!
//! The points-to solver, when provenance is enabled, records into a
//! [`ProvStore`]: an append-only arena of [`Step`]s — compact u32 triples
//! `(dst, pointee, src)` keyed by the solver's location interner — plus a
//! justification table for the dynamically discovered copy edges (loads,
//! stores, indirect-call bindings). Exactly one step is recorded per
//! derived fact, the *first* derivation the solver found, so extracting
//! `why(dst, pointee)` is a deterministic backward walk from the fact to
//! its seed constraint: a shortest-by-construction chain, since every
//! premise step was recorded before its conclusion (the arena is causally
//! ordered — an invariant the replay verifier in `ivy-analysis` checks).
//!
//! This crate deliberately has **no dependencies** (not even the vendored
//! serde shims) and knows nothing about `Loc` or constraints: it stores
//! and walks u32 ids only, so `ivy-analysis` can depend on it without a
//! cycle. Rendering ids back to human-readable locations is the
//! interner's job.

#![warn(missing_docs)]

use std::collections::HashMap;

/// Sentinel `src` marking a fact introduced by an `AddrOf` seed
/// constraint rather than derived from another fact.
pub const SEED: u32 = u32::MAX;

/// Why a dynamic copy edge `u -> v` exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `dst = *src`: the edge copies out of a pointee of `src`.
    Load,
    /// `*dst = src`: the edge copies into a pointee of `dst`.
    Store,
    /// A parameter or return binding of an indirect call site, created
    /// when the callee expression was resolved to a function.
    CallBind,
}

impl EdgeKind {
    /// Stable lower-case name used in serialized chains.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Load => "load",
            EdgeKind::Store => "store",
            EdgeKind::CallBind => "call-bind",
        }
    }
}

/// One derived fact: `dst` points to `pointee` because `src` points to
/// `pointee` (and an edge `src -> dst` exists), or because of a seed
/// constraint when `src == SEED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The location the fact is about.
    pub dst: u32,
    /// The pointee the fact adds to `dst`'s set.
    pub pointee: u32,
    /// The premise location the pointee flowed from, or [`SEED`].
    pub src: u32,
}

/// Justification for a dynamic copy edge `u -> v`: the fact
/// `(trigger, aux)` whose discovery spawned the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeProv {
    /// The location whose points-to fact spawned the edge (the pointer
    /// being loaded through / stored through / called through).
    pub trigger: u32,
    /// The pointee of `trigger` that the edge routes through (the
    /// dereferenced target, or the bound function for call edges).
    pub aux: u32,
    /// Which solver rule created the edge.
    pub kind: EdgeKind,
}

/// One link of an extracted derivation chain, seed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainStep {
    /// The fact this link establishes: `dst` points to the chain's target.
    pub dst: u32,
    /// The pointee the whole chain is about.
    pub pointee: u32,
    /// The premise location (`SEED` for the first link).
    pub src: u32,
    /// For links that crossed a *dynamic* copy edge, the edge's
    /// justification; `None` for seed links and static `Copy` edges.
    pub edge: Option<EdgeProv>,
}

fn pack(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// The append-only derivation arena.
///
/// `record_fact` is first-insert-wins: the solver only records elements
/// that are genuinely fresh in a set, so each fact gets exactly one step —
/// its earliest derivation.
#[derive(Debug, Default)]
pub struct ProvStore {
    steps: Vec<Step>,
    /// `(dst, pointee)` packed -> index into `steps`.
    fact_index: HashMap<u64, u32>,
    /// `(u, v)` packed -> why the dynamic edge `u -> v` exists.
    edges: HashMap<u64, EdgeProv>,
}

impl ProvStore {
    /// An empty store.
    pub fn new() -> ProvStore {
        ProvStore::default()
    }

    /// Records a derived fact; the first derivation of a fact wins and
    /// later recordings of the same `(dst, pointee)` are ignored.
    pub fn record_fact(&mut self, dst: u32, pointee: u32, src: u32) {
        let key = pack(dst, pointee);
        if let std::collections::hash_map::Entry::Vacant(e) = self.fact_index.entry(key) {
            let idx = self.steps.len() as u32;
            self.steps.push(Step { dst, pointee, src });
            e.insert(idx);
        }
    }

    /// Records why a dynamic copy edge `u -> v` exists (first wins).
    pub fn record_edge(&mut self, u: u32, v: u32, trigger: u32, aux: u32, kind: EdgeKind) {
        self.edges
            .entry(pack(u, v))
            .or_insert(EdgeProv { trigger, aux, kind });
    }

    /// Arena index of the step that derived `(dst, pointee)`, if recorded.
    pub fn index_of(&self, dst: u32, pointee: u32) -> Option<u32> {
        self.fact_index.get(&pack(dst, pointee)).copied()
    }

    /// The step at an arena index.
    pub fn step(&self, idx: u32) -> Option<Step> {
        self.steps.get(idx as usize).copied()
    }

    /// All recorded steps in arena (causal) order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Justification for the dynamic edge `u -> v`, if one was recorded.
    pub fn edge_prov(&self, u: u32, v: u32) -> Option<EdgeProv> {
        self.edges.get(&pack(u, v)).copied()
    }

    /// Number of recorded facts.
    pub fn facts(&self) -> usize {
        self.steps.len()
    }

    /// Number of recorded dynamic-edge justifications.
    pub fn dyn_edges(&self) -> usize {
        self.edges.len()
    }

    /// Approximate resident size of the arena in bytes (steps plus index
    /// plus edge table) — what the `stats` verb reports as
    /// `provenance_bytes`.
    pub fn bytes(&self) -> usize {
        self.steps.len() * std::mem::size_of::<Step>()
            + self.fact_index.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
            + self.edges.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<EdgeProv>())
    }

    /// Appends every step and edge of `other` (in `other`'s arena order)
    /// into this store. Used by the parallel wavefront to drain per-shard
    /// arenas into the master store at each merge barrier, preserving the
    /// causal ordering invariant (premises recorded at an earlier barrier
    /// land at lower indices).
    pub fn absorb(&mut self, other: &ProvStore) {
        for s in &other.steps {
            self.record_fact(s.dst, s.pointee, s.src);
        }
        for (key, prov) in &other.edges {
            self.edges.entry(*key).or_insert(*prov);
        }
    }

    /// Drains this store's steps and edges (leaving it empty but with its
    /// allocations intact) into `master`. The reusable-buffer counterpart
    /// of [`ProvStore::absorb`] for the per-shard arenas.
    pub fn drain_into(&mut self, master: &mut ProvStore) {
        for s in self.steps.drain(..) {
            master.record_fact(s.dst, s.pointee, s.src);
        }
        self.fact_index.clear();
        for (key, prov) in self.edges.drain() {
            master.edges.entry(key).or_insert(prov);
        }
    }

    /// Extracts the derivation chain for the fact `dst points-to pointee`,
    /// seed constraint first. `None` when no step was recorded for the
    /// fact. The walk is deterministic (each fact has exactly one step)
    /// and guarded against malformed cycles, which the causal-ordering
    /// invariant rules out for solver-produced stores.
    pub fn why(&self, dst: u32, pointee: u32) -> Option<Vec<ChainStep>> {
        let mut chain = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cur = dst;
        loop {
            if !seen.insert(cur) {
                return None; // malformed store: derivation cycle
            }
            let idx = self.index_of(cur, pointee)?;
            let step = self.steps[idx as usize];
            let edge = if step.src == SEED {
                None
            } else {
                self.edge_prov(step.src, step.dst)
            };
            chain.push(ChainStep {
                dst: step.dst,
                pointee,
                src: step.src,
                edge,
            });
            if step.src == SEED {
                break;
            }
            cur = step.src;
        }
        chain.reverse();
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_derivation_wins_and_chains_walk_to_the_seed() {
        let mut p = ProvStore::new();
        // Seed: a -> x. Copy: b gets x from a. Copy: c gets x from b.
        p.record_fact(0, 10, SEED);
        p.record_fact(1, 10, 0);
        p.record_fact(2, 10, 1);
        // A later rediscovery of the same fact must not displace the first.
        p.record_fact(1, 10, 2);
        assert_eq!(p.facts(), 3);
        assert_eq!(p.step(p.index_of(1, 10).unwrap()).unwrap().src, 0);

        let chain = p.why(2, 10).expect("recorded fact has a chain");
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].src, SEED);
        assert_eq!(chain[0].dst, 0);
        assert_eq!(chain[1].dst, 1);
        assert_eq!(chain[2].dst, 2);
        // Premise indices are strictly below conclusion indices.
        for w in chain.windows(2) {
            assert!(p.index_of(w[0].dst, 10).unwrap() < p.index_of(w[1].dst, 10).unwrap());
        }
        assert!(p.why(7, 10).is_none(), "unrecorded facts have no chain");
    }

    #[test]
    fn dynamic_edges_annotate_the_links_that_crossed_them() {
        let mut p = ProvStore::new();
        p.record_fact(0, 10, SEED);
        p.record_edge(0, 1, 5, 9, EdgeKind::Load);
        p.record_fact(1, 10, 0);
        let chain = p.why(1, 10).unwrap();
        assert_eq!(chain[0].edge, None);
        let e = chain[1].edge.expect("dynamic link carries its edge");
        assert_eq!((e.trigger, e.aux), (5, 9));
        assert_eq!(e.kind, EdgeKind::Load);
        assert_eq!(e.kind.name(), "load");
        // Edge justifications are first-wins too.
        p.record_edge(0, 1, 6, 6, EdgeKind::Store);
        assert_eq!(p.edge_prov(0, 1).unwrap().trigger, 5);
    }

    #[test]
    fn absorb_and_drain_preserve_arena_order_and_dedupe() {
        let mut master = ProvStore::new();
        master.record_fact(0, 10, SEED);
        let mut shard = ProvStore::new();
        shard.record_fact(1, 10, 0);
        shard.record_fact(0, 10, 99); // duplicate fact: master's wins
        shard.record_edge(0, 1, 4, 10, EdgeKind::CallBind);
        master.absorb(&shard);
        assert_eq!(master.facts(), 2);
        assert_eq!(master.step(0).unwrap().src, SEED);
        assert!(master.index_of(0, 10).unwrap() < master.index_of(1, 10).unwrap());
        assert_eq!(master.dyn_edges(), 1);

        let mut master2 = ProvStore::new();
        shard.drain_into(&mut master2);
        assert_eq!(shard.facts(), 0);
        assert_eq!(shard.dyn_edges(), 0);
        assert_eq!(master2.facts(), 2);
        assert!(master2.bytes() > 0);
    }
}
