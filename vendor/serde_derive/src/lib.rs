//! Vendored shim for `serde_derive` (the build environment has no network
//! access to a crates registry).
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker —
//! all actual serialization in this repository is hand-written against
//! `ivy_engine::json` (stable field ordering is a requirement there, so the
//! hand-rolled writers are the source of truth anyway). These derives
//! therefore expand to a marker-trait impl and nothing else, which keeps the
//! seed sources building unmodified while staying swappable for the real
//! serde: replacing the `vendor/` path deps with registry versions requires
//! no source changes.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name and generics-arity facts needed to emit a marker
/// impl. Returns `(name, generic_params)` where `generic_params` is the raw
/// token text between `<...>` of the type definition (bounds included).
fn parse_item(input: &TokenStream) -> Option<(String, String)> {
    let mut tokens = input.clone().into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility / doc tokens until the item
    // keyword, then take the following identifier as the type name.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    if let Some(TokenTree::Ident(n)) = tokens.next() {
                        name = Some(n.to_string());
                    }
                    break;
                }
            }
            _ => continue,
        }
    }
    let name = name?;
    // Capture a generic parameter list if one follows the name.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in tokens.by_ref() {
                let text = tt.to_string();
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        if depth > 1 {
                            generics.push('<');
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        generics.push('>');
                    }
                    _ => {
                        generics.push_str(&text);
                        generics.push(' ');
                    }
                }
            }
        }
    }
    Some((name, generics))
}

/// Names of the generic parameters (without bounds), for the `Type<P1, P2>`
/// position of the impl.
fn param_names(generics: &str) -> String {
    let mut names = Vec::new();
    let mut depth = 0i32;
    for part in generics.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if depth == 0 {
            let head = part.split(':').next().unwrap_or(part).trim();
            // `'a` lifetimes and plain idents both work here; skip const
            // generics' `const` keyword.
            let head = head.strip_prefix("const ").unwrap_or(head);
            let head = head.split_whitespace().next().unwrap_or(head);
            if !head.is_empty() {
                names.push(head.to_string());
            }
        }
        depth += part.matches('<').count() as i32 - part.matches('>').count() as i32;
    }
    names.join(", ")
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let Some((name, generics)) = parse_item(&input) else {
        return TokenStream::new();
    };
    let params = param_names(&generics);
    let code = if generics.is_empty() {
        format!("impl {trait_path} for {name} {{}}")
    } else {
        format!("impl<{generics}> {trait_path} for {name}<{params}> {{}}")
    };
    code.parse().unwrap_or_else(|_| TokenStream::new())
}

/// Marker derive for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Marker derive for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
