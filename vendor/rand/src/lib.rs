//! Vendored shim for `rand` (no network access to a crates registry in the
//! build environment).
//!
//! Implements the API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen}` — on top of a
//! SplitMix64 generator. Determinism is all that matters here: the kernel
//! generator only uses it for reproducible size parameters. The stream
//! differs from the real `rand`'s ChaCha-based `StdRng`, which is fine
//! because nothing in the workspace depends on specific draw values.

use std::ops::Range;

/// Core RNG trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Samples a value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from a uniform half-open range.
pub trait SampleRange: Copy {
    /// Uniform sample from `range` (Lemire-style rejection is overkill here;
    /// the tiny modulo bias is irrelevant for corpus-size parameters).
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for i64 {
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange for i32 {
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let span = (i64::from(range.end) - i64::from(range.start)) as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i32)
    }
}

/// Types sampleable by `Rng::gen`.
pub trait Standard {
    /// A uniformly random value.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for i64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for the real
    /// crate's `StdRng`; same construction API, different (but fixed) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush; more
            // than enough for corpus parameter draws.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(64..1024u32);
            assert_eq!(x, b.gen_range(64..1024u32));
            assert!((64..1024).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xs, ys);
    }
}
