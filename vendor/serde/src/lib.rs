//! Vendored shim for `serde` (no network access to a crates registry in the
//! build environment).
//!
//! `Serialize` / `Deserialize` are marker traits here: the workspace derives
//! them on its data model for API compatibility with the real serde, but all
//! serialization that actually runs is the hand-written, stable-field-order
//! JSON in `ivy_engine::json`. The shim is swappable for the real crate by
//! pointing the workspace dependency at the registry instead of `vendor/`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

impl_markers!(
    (),
    bool,
    char,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    f32,
    f64,
    String
);

impl<T> Serialize for Option<T> {}
impl<T> Deserialize for Option<T> {}
impl<T> Serialize for Vec<T> {}
impl<T> Deserialize for Vec<T> {}
impl<T> Serialize for Box<T> {}
impl<T> Deserialize for Box<T> {}
impl<T> Serialize for std::collections::BTreeSet<T> {}
impl<T> Deserialize for std::collections::BTreeSet<T> {}
impl<K, V> Serialize for std::collections::BTreeMap<K, V> {}
impl<K, V> Deserialize for std::collections::BTreeMap<K, V> {}
impl<K, V, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S> {}
impl<A, B> Serialize for (A, B) {}
impl<A, B> Deserialize for (A, B) {}
impl Serialize for &str {}
