//! Vendored shim for `serde_json` (no network access to a crates registry in
//! the build environment).
//!
//! Unlike the `serde` marker shim this is a real, if small, JSON library:
//! a [`Value`] model, a recursive-descent parser ([`from_str`]), and compact
//! and pretty printers ([`to_string`], [`to_string_pretty`]). Objects are
//! backed by a `BTreeMap`, so key order is always sorted and output is
//! byte-stable — a property `ivy-engine` relies on for its diagnostic
//! reports. Workspace code writes against the `Value` API only (no generic
//! `Serialize` bounds), so swapping in the real serde_json is source
//! compatible.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted keys, like serde_json's default `Map`.
pub type Map = BTreeMap<String, Value>;

/// A JSON number. Integers are kept exact; floats are printed with enough
/// precision to round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer.
    U(u64),
    /// Floating point.
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` for everything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v),
            Value::Number(Number::U(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::F(v)) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(v)) => Some(*v),
            Value::Number(Number::I(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::F(v)) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v as f64),
            Value::Number(Number::U(v)) => Some(*v as f64),
            Value::Number(Number::F(v)) => Some(*v),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::I(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U(v))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(Number::U(u64::from(v)))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::U(v as u64))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

/// A JSON parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected token")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::F(v)))
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|v| Value::Number(Number::I(v)))
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(|v| Value::Number(Number::U(v)))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if !pretty {
                        out.push(' ');
                    }
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if !pretty {
                        out.push(' ');
                    }
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, val, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes a [`Value`] compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, false, 0);
    Ok(out)
}

/// Serializes a [`Value`] with two-space indentation. Keys are always in
/// sorted order, so output is byte-stable across runs.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, true, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = Map::new();
        m.insert("b".into(), Value::from(2u64));
        m.insert(
            "a".into(),
            Value::from(vec![Value::from("x\ny"), Value::Null]),
        );
        m.insert("c".into(), Value::from(-1.5));
        let v = Value::Object(m);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
        // Sorted key order.
        assert!(s.find("\"a\"").unwrap() < s.find("\"b\"").unwrap());
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = from_str(r#"{"s": "aA\n", "n": -3, "u": 18446744073709551615, "f": 2.5}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aA\n");
        assert_eq!(v.get("n").unwrap().as_i64().unwrap(), -3);
        assert_eq!(v.get("u").unwrap().as_u64().unwrap(), u64::MAX);
        assert_eq!(v.get("f").unwrap().as_f64().unwrap(), 2.5);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}
