//! Vendored shim for `proptest` (no network access to a crates registry in
//! the build environment).
//!
//! A minimal property-testing library implementing the API subset the
//! `ivy-cmir` round-trip tests use: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive`, [`strategy::Just`], tuple
//! and range strategies, a character-class regex subset for `&str`
//! strategies, `prop::collection::vec`, `any::<T>()`, and the `proptest!` /
//! `prop_oneof!` / `prop_assert*!` macros. Generation is deterministic
//! (fixed-seed SplitMix64) and there is no shrinking: a failing case panics
//! with the generated inputs debug-printed, which has proven enough to act
//! on in this workspace.

pub mod test_runner {
    /// Deterministic RNG used for all generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed generator; every `proptest!` test gets the same
        /// stream, making failures reproducible run to run.
        pub fn deterministic() -> TestRng {
            TestRng {
                state: 0x01BA_D5EE_D0DD_BA11,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value. `size` bounds recursive/collection growth.
        fn gen_value(&self, rng: &mut TestRng, size: u32) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<R, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> R,
        {
            Map {
                base: self,
                f: Arc::new(f),
            }
        }

        /// Rejects generated values failing `pred` (regenerates, up to a
        /// retry cap).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                reason,
                pred: Arc::new(pred),
            }
        }

        /// Builds a bounded recursive strategy: `recurse` receives the
        /// strategy for the previous level and returns the branching level.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branched = recurse(current).boxed();
                // Lean toward leaves so sizes stay small at every level.
                current = Union {
                    options: vec![leaf.clone(), leaf.clone(), branched],
                }
                .boxed();
            }
            current
        }

        /// Type-erases the strategy behind an `Arc`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng, size: u32) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng, size: u32) -> S::Value {
            self.gen_value(rng, size)
        }
    }

    /// A cheaply clonable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng, size: u32) -> T {
            self.inner.gen_dyn(rng, size)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng, _size: u32) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F: ?Sized> {
        base: S,
        f: Arc<F>,
    }

    impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                base: self.base.clone(),
                f: Arc::clone(&self.f),
            }
        }
    }

    impl<S, R, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> R + ?Sized,
    {
        type Value = R;
        fn gen_value(&self, rng: &mut TestRng, size: u32) -> R {
            (self.f)(self.base.gen_value(rng, size))
        }
    }

    /// `prop_filter` combinator.
    pub struct Filter<S, F: ?Sized> {
        base: S,
        reason: &'static str,
        pred: Arc<F>,
    }

    impl<S: Clone, F: ?Sized> Clone for Filter<S, F> {
        fn clone(&self) -> Self {
            Filter {
                base: self.base.clone(),
                reason: self.reason,
                pred: Arc::clone(&self.pred),
            }
        }
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool + ?Sized,
    {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng, size: u32) -> S::Value {
            for _ in 0..10_000 {
                let v = self.base.gen_value(rng, size);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 candidates: {}", self.reason)
        }
    }

    /// Uniform choice between strategies of one value type (`prop_oneof!`).
    pub struct Union<T> {
        /// The alternatives.
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng, size: u32) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].gen_value(rng, size)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng, size: u32) -> Self::Value {
                    ($(self.$idx.gen_value(rng, size),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng, _size: u32) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    /// `&str` strategies interpret the string as a regex over a small
    /// subset: literal characters, `[...]` classes with ranges, and `{m,n}`
    /// / `{n}` / `?` / `*` / `+` repetition suffixes.
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng, _size: u32) -> String {
            gen_from_pattern(self, rng)
        }
    }

    #[derive(Debug, Clone)]
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        // `chars[i]` is the character after `[`.
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                for c in lo..=hi {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(chars[i]);
                i += 1;
            }
        }
        (set, i + 1) // past `]`
    }

    fn parse_repeat(chars: &[char], i: usize) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                let Some(close) = close else { return (1, 1, i) };
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().unwrap_or(0),
                        b.trim()
                            .parse()
                            .unwrap_or_else(|_| a.trim().parse().unwrap_or(0)),
                    ),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            _ => (1, 1, i),
        }
    }

    fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let (set, next) = match chars[i] {
                '[' => parse_class(&chars, i + 1),
                '\\' if i + 1 < chars.len() => (vec![chars[i + 1]], i + 2),
                c => (vec![c], i + 1),
            };
            let (min, max, next) = parse_repeat(&chars, next);
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
            i = next;
        }
        let mut out = String::new();
        for atom in &atoms {
            if atom.chars.is_empty() {
                continue;
            }
            let count = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..count {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// The strategy generating arbitrary values.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy for any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Function-pointer-backed strategy used by [`Arbitrary`] impls.
#[derive(Clone)]
pub struct FnStrategy<T> {
    gen: fn(&mut test_runner::TestRng) -> T,
}

impl<T> strategy::Strategy for FnStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut test_runner::TestRng, _size: u32) -> T {
        (self.gen)(rng)
    }
}

macro_rules! impl_arbitrary {
    ($($t:ty => $f:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> FnStrategy<$t> {
                FnStrategy { gen: $f }
            }
        }
    )*};
}

impl_arbitrary! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
}

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A strategy for vectors with lengths drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy for `Vec<T>` (see [`vec`]).
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng, size: u32) -> Vec<S::Value> {
                let span = self.len.end.saturating_sub(self.len.start).max(1);
                let n = self.len.start + rng.below(span);
                (0..n).map(|_| self.element.gen_value(rng, size)).collect()
            }
        }
    }
}

/// Everything a proptest-based test file usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$($crate::strategy::Strategy::boxed($strategy)),+],
        }
    };
}

/// Property assertion; returns an error from the test case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion; returns an error from the test case on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!("prop_assert_eq failed: {a:?} != {b:?}"));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed ({}): {a:?} != {b:?}", format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion; returns an error from the test case on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err(format!("prop_assert_ne failed: both were {a:?}"));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne failed ({}): both were {a:?}", format!($($fmt)+)
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs its
/// body against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                $(let $arg = $strategy;)+
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::gen_value(&$arg, &mut rng, 16);
                    )+
                    let dbg_args = format!(concat!($(stringify!($arg), "={:?} ",)+), $(&$arg),+);
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("case {case}/{} failed: {msg}\n  inputs: {dbg_args}",
                               config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (0i64..100).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn regex_subset_generates_matching_idents(s in "[a-z][a-z0-9_]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7, "bad length: {s:?}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn recursion_depth_is_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3, "depth {} for {t:?}", depth(&t));
        }

        #[test]
        fn oneof_filters_and_vectors_work(
            v in prop::collection::vec(prop_oneof![Just(1i64), Just(2i64)], 0..5),
            x in (0i64..50).prop_filter("even", |n| n % 2 == 0),
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|n| *n == 1 || *n == 2));
            prop_assert_eq!(x % 2, 0);
        }
    }
}
