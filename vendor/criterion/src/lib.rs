//! Vendored shim for `criterion` (no network access to a crates registry in
//! the build environment).
//!
//! A minimal wall-clock benchmark harness exposing the criterion API subset
//! the `ivy-bench` crate uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. No statistics beyond
//! mean/min/max and no HTML reports — the tables the benches print
//! themselves are the artifact that matters in this workspace.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        report(&label, &bencher.times);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one sample per configured `sample_size`, after a
    /// single untimed warm-up call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

fn report(label: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().expect("non-empty");
    let max = times.iter().max().expect("non-empty");
    println!(
        "bench {label:<48} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        times.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
