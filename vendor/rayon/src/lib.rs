//! Vendored shim for `rayon` (no network access to a crates registry in the
//! build environment).
//!
//! Implements the subset of the rayon API that the workspace uses —
//! `ThreadPoolBuilder` / `ThreadPool::install`, `par_iter()` /
//! `into_par_iter()`, `map`, `for_each`, and `collect`. A [`ThreadPool`]
//! keeps **persistent worker threads** parked on a condvar: dispatching a
//! parallel operation inside `install` costs one lock + notify per worker
//! instead of an OS thread spawn, which is what makes fine-grained
//! fan-out (the points-to solver dispatches per wavefront superstep)
//! worthwhile. Outside any `install`, parallel operations fall back to
//! `std::thread::scope` spawns. Unlike the real rayon there is no
//! work-stealing deque: items are split into contiguous per-worker chunks.
//! Results are always returned in input order, so parallel and sequential
//! runs are byte-identical — a property the engine's determinism test
//! pins down.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// A queued unit of work. Jobs are type-erased closures; [`pool_apply`]
/// transmutes away the caller's borrow lifetimes and is sound because it
/// blocks until every job it queued has finished before returning.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between a pool's owner and its workers.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when a job is queued or shutdown begins.
    available: Condvar,
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

thread_local! {
    /// The pool installed by [`ThreadPool::install`] for the dynamic extent
    /// of the closure: its shared state (None = no pool, spawn scoped
    /// threads) and its thread count (0 = hardware default).
    static INSTALLED: RefCell<(Option<Arc<PoolShared>>, usize)> = const { RefCell::new((None, 0)) };
}

/// The number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED.with(|c| c.borrow().1);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error from building a thread pool (never actually produced by the shim;
/// present for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (0 = hardware default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(ThreadPool {
            shared,
            num_threads: threads,
            workers,
        })
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut queue = shared.queue.lock().expect("pool lock");
    loop {
        if let Some(job) = queue.jobs.pop_front() {
            drop(queue);
            job();
            queue = shared.queue.lock().expect("pool lock");
        } else if queue.shutdown {
            return;
        } else {
            queue = shared.available.wait(queue).expect("pool lock");
        }
    }
}

/// A thread pool with persistent parked workers. `install` scopes the
/// pool's parallelism exactly like the real rayon does: parallel iterators
/// used inside the closure run on this pool's workers.
#[derive(Debug)]
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    num_threads: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `f` with this pool governing any parallel iterators used
    /// inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|c| {
            let prev = c.replace((Some(Arc::clone(&self.shared)), self.num_threads));
            let out = f();
            c.replace(prev);
            out
        })
    }

    /// The pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared").finish_non_exhaustive()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().expect("pool lock").shutdown = true;
        self.available_notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl ThreadPool {
    fn available_notify_all(&self) {
        self.shared.available.notify_all();
    }
}

/// Applies `f` to every item with the current parallelism, preserving
/// input order: on a pool's persistent workers inside `install`, on
/// scoped spawns otherwise.
fn parallel_apply<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let pool = INSTALLED.with(|c| c.borrow().0.clone());
    match pool {
        Some(shared) => pool_apply(&shared, threads, items, f),
        None => scoped_apply(threads, items, f),
    }
}

/// Everything one [`pool_apply`] call shares with the jobs it queued.
struct ApplyCall<R> {
    /// One output slot per chunk, filled by the worker that ran it.
    outputs: Vec<Mutex<Vec<R>>>,
    /// Chunks still running; the caller waits for zero.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload out of any chunk, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Runs `f` over round-robin stripes of `items` on a pool's persistent
/// workers (striping spreads hot neighborhoods of the input across
/// workers; each item carries its original position so the merged output
/// is order-stable). Blocks until every queued job has completed — the
/// borrows the type-erased jobs capture never outlive this call, which is
/// what makes the lifetime transmute below sound.
fn pool_apply<T: Send, R: Send>(
    shared: &Arc<PoolShared>,
    threads: usize,
    items: Vec<T>,
    f: &(impl Fn(T) -> R + Sync),
) -> Vec<R> {
    let total = items.len();
    let stripes = threads.min(total);
    let mut buckets: Vec<Vec<(usize, T)>> = (0..stripes).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % stripes].push((i, item));
    }
    let call = ApplyCall::<(usize, R)> {
        outputs: (0..stripes).map(|_| Mutex::new(Vec::new())).collect(),
        pending: Mutex::new(stripes),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };
    {
        let mut queue = shared.queue.lock().expect("pool lock");
        for (i, bucket) in buckets.into_iter().enumerate() {
            let call = &call;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    bucket
                        .into_iter()
                        .map(|(pos, item)| (pos, f(item)))
                        .collect::<Vec<(usize, R)>>()
                }));
                match result {
                    Ok(out) => *call.outputs[i].lock().expect("output lock") = out,
                    Err(payload) => {
                        call.panic
                            .lock()
                            .expect("panic lock")
                            .get_or_insert(payload);
                    }
                }
                let mut pending = call.pending.lock().expect("pending lock");
                *pending -= 1;
                if *pending == 0 {
                    call.done.notify_all();
                }
            });
            // SAFETY: the job borrows `call`, `f`, and whatever `f`
            // captures, none of which are `'static` — but this function
            // does not return until `pending` reaches zero, i.e. until the
            // job has run to completion, so the erased borrows are live
            // for the job's entire execution.
            let job: Job = unsafe { std::mem::transmute(job) };
            queue.jobs.push_back(job);
        }
        shared.available.notify_all();
    }
    let mut pending = call.pending.lock().expect("pending lock");
    while *pending > 0 {
        pending = call.done.wait(pending).expect("pending lock");
    }
    drop(pending);
    if let Some(payload) = call.panic.lock().expect("panic lock").take() {
        resume_unwind(payload);
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    for slot in call.outputs {
        for (pos, r) in slot.into_inner().expect("output lock") {
            slots[pos] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// The no-pool fallback: stripe items round-robin across scoped spawns,
/// remembering each item's original position so the merged output is
/// order-stable.
fn scoped_apply<T: Send, R: Send>(
    threads: usize,
    items: Vec<T>,
    f: &(impl Fn(T) -> R + Sync),
) -> Vec<R> {
    let mut buckets: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut results: Vec<(usize, R)> = Vec::new();
        for h in handles {
            results.extend(h.join().expect("rayon-shim worker panicked"));
        }
        slots.resize_with(results.len(), || None);
        for (i, r) in results {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// A parallel iterator: a materialized item list plus a composed pipeline.
pub trait ParallelIterator: Sized {
    /// Item type flowing out of this stage.
    type Item: Send;

    /// Executes the pipeline in parallel, preserving order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = parallel_apply(self.drive(), &|item| f(item));
    }

    /// Collects the results.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.drive())
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_apply(self.base.drive(), &self.f)
    }
}

/// Leaf iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Types convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> IntoParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual rayon prelude.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let doubled: Vec<usize> = pool.install(|| items.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| items.par_iter().map(|x| x * x).collect());
        let par: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| items.par_iter().map(|x| x * x).collect());
        assert_eq!(seq, par);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn into_par_iter_and_for_each() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn pool_dispatch_reuses_workers_across_operations() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        for round in 0u64..50 {
            let items: Vec<u64> = (0..256).collect();
            let out: Vec<u64> = pool.install(|| items.into_par_iter().map(|x| x + round).collect());
            assert_eq!(out, (0..256).map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let items: Vec<u64> = (0..64).collect();
            let _: Vec<u64> = pool.install(|| {
                items
                    .into_par_iter()
                    .map(|x| if x == 13 { panic!("boom") } else { x })
                    .collect()
            });
        }));
        assert!(caught.is_err());
        // The pool survives a panicked job and keeps serving.
        let out: Vec<u64> =
            pool.install(|| vec![1u64, 2, 3].into_par_iter().map(|x| x * 2).collect());
        assert_eq!(out, vec![2, 4, 6]);
    }
}
