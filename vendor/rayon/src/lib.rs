//! Vendored shim for `rayon` (no network access to a crates registry in the
//! build environment).
//!
//! Implements the subset of the rayon API that `ivy-engine` uses —
//! `ThreadPoolBuilder` / `ThreadPool::install`, `par_iter()` /
//! `into_par_iter()`, `map`, `for_each`, and `collect` — on top of
//! `std::thread::scope`. Unlike the real rayon there is no work-stealing
//! deque: items are striped round-robin across the pool, which balances well
//! for the many-small-functions workloads the engine schedules. Results are
//! always returned in input order, so parallel and sequential runs are
//! byte-identical — a property the engine's determinism test pins down.

use std::cell::Cell;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`] for the dynamic
    /// extent of the closure; 0 means "use the hardware default".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error from building a thread pool (never actually produced by the shim;
/// present for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (0 = hardware default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A logical thread pool. The shim spawns scoped threads per operation
/// rather than keeping workers alive; `install` scopes the configured
/// parallelism exactly like the real rayon does.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing any parallel
    /// iterators used inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let out = f();
            c.set(prev);
            out
        })
    }

    /// The pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Applies `f` to every item on the current pool, preserving input order.
fn parallel_apply<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Stripe items round-robin across the workers, remembering each item's
    // original position so the merged output is order-stable.
    let mut buckets: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }

    let mut slots: Vec<Option<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut results: Vec<(usize, R)> = Vec::new();
        for h in handles {
            results.extend(h.join().expect("rayon-shim worker panicked"));
        }
        slots.resize_with(results.len(), || None);
        for (i, r) in results {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// A parallel iterator: a materialized item list plus a composed pipeline.
pub trait ParallelIterator: Sized {
    /// Item type flowing out of this stage.
    type Item: Send;

    /// Executes the pipeline in parallel, preserving order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = parallel_apply(self.drive(), &|item| f(item));
    }

    /// Collects the results.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.drive())
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_apply(self.base.drive(), &self.f)
    }
}

/// Leaf iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Types convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> IntoParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual rayon prelude.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let doubled: Vec<usize> = pool.install(|| items.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| items.par_iter().map(|x| x * x).collect());
        let par: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| items.par_iter().map(|x| x * x).collect());
        assert_eq!(seq, par);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn into_par_iter_and_for_each() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
