//! Integration test for experiment E5: BlockStop finds the seeded bugs and
//! its false positives are silenced by run-time assertions.

use ivy::core::experiments::{blockstop_results, pointsto_ablation, Scale};

#[test]
fn blockstop_finds_both_seeded_bugs_and_silences_false_positives() {
    let r = blockstop_results(&Scale::test());
    assert_eq!(r.real_bugs_found, 2, "the paper found two apparent bugs");
    assert!(
        r.false_positives > 0,
        "conservative points-to must produce false positives"
    );
    assert!(r.asserts_inserted >= 1);
    assert!(
        r.findings_after < r.findings_before,
        "assertions must reduce findings: {} -> {}",
        r.findings_before,
        r.findings_after
    );
    assert!(r.real_bug_findings >= 2);
    // The assertions encode true facts, so none fire during boot.
    assert_eq!(r.runtime_assert_failures, 0);
    // The seeded bugs are observable at run time as well.
    assert!(r.runtime_violations > 0);
}

#[test]
fn pointsto_precision_improves_results() {
    let rows = pointsto_ablation(&Scale::test());
    assert_eq!(rows.len(), 3);
    let get = |name: &str| rows.iter().find(|r| r.sensitivity == name).unwrap();
    let steens = get("steensgaard");
    let andersen = get("andersen");
    let field = get("andersen+field");
    // More precise analyses never report more false positives, and the
    // equality-based analysis has the largest indirect-call fan-out.
    assert!(andersen.false_positives <= steens.false_positives);
    assert!(field.false_positives <= andersen.false_positives);
    assert!(steens.mean_indirect_fanout >= field.mean_indirect_fanout);
}
