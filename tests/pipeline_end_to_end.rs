//! Whole-pipeline integration test: generate the kernel, run all three tools,
//! execute the hardened kernel fully instrumented, and check the combined
//! soundness story (this is the "proof-of-concept kernel" of the paper's
//! introduction, in miniature).

use ivy::ccount::FreeVerification;
use ivy::core::pipeline::Pipeline;
use ivy::deputy::erase;
use ivy::kernelgen::{boot_workload, KernelBuild, KernelConfig};
use ivy::vm::{Value, Vm, VmConfig};

#[test]
fn hardened_kernel_boots_cleanly_and_erasure_recovers_the_original() {
    let config = KernelConfig::small();
    let build = KernelBuild::generate(&config);
    let hardened = Pipeline::new().run(&build);
    assert!(hardened.deputy.accepted());

    // Fully instrumented boot: Deputy checks + CCount refcounts + BlockStop
    // assertions, all at once.
    let boot = boot_workload(config.boot_cycles);
    let mut vm = Vm::new(hardened.program.clone(), VmConfig::full(false)).unwrap();
    vm.run(
        &boot.entry,
        vec![Value::Int(i64::from(boot.iters)), Value::Int(0)],
    )
    .unwrap();
    assert!(vm.stats.total_checks() > 0);
    assert!(
        vm.stats.check_failures.is_empty(),
        "{:?}",
        vm.stats.check_failures
    );
    let frees = FreeVerification::from_stats(&vm.stats);
    assert_eq!(frees.bad, 0);
    assert!(frees.good > 0);
    assert_eq!(vm.stats.assert_failures, 0);

    // Erasure: stripping every annotation and inserted check yields a program
    // that still boots and does the same work, with no checks executed.
    let erased = erase(&hardened.program);
    let mut vm2 = Vm::new(erased, VmConfig::full(false)).unwrap();
    vm2.run(
        &boot.entry,
        vec![Value::Int(i64::from(boot.iters)), Value::Int(0)],
    )
    .unwrap();
    assert_eq!(vm2.stats.checks_executed.get("bounds"), None);
    assert_eq!(
        vm2.stats.calls, vm.stats.calls,
        "erasure must not change the work done"
    );
}
