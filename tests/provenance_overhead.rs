//! CI pin for the provenance budget: derivation recording is opt-in, and
//! paying for it while it is *off* would tax every solve in the system.
//! The disabled-mode cost is one branch on an `Option<ProvStore>` per
//! recording site the solver passes; this test prices that gate the same
//! way the telemetry suite prices its disabled span gate — count the
//! events one enabled solve records, multiply by the measured per-gate
//! cost, and hold the product under 2% of the disabled cold-solve wall
//! time. (That the recording never changes an answer is pinned separately
//! by the differential property tests.)

use ivy::analysis::pointsto::{analyze_with, Sensitivity, SolveOptions, SolverChoice};
use ivy::kernelgen::{KernelBuild, KernelConfig};
use std::time::Instant;

#[test]
fn disabled_provenance_overhead_stays_under_the_telemetry_budget() {
    let build = KernelBuild::generate(&KernelConfig::paper());
    let worklist = SolveOptions {
        solver: SolverChoice::Worklist,
        threads: 1,
        provenance: false,
    };

    // Median wall time of the disabled cold solve — the denominator the
    // budget is a percentage of.
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            analyze_with(&build.program, Sensitivity::AndersenField, worklist);
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let disabled_seconds = samples[samples.len() / 2];

    // Every recording call one enabled solve makes: one per derived fact
    // plus one per dynamically-discovered graph edge. Each of those sites
    // costs the disabled mode exactly one gate check.
    let enabled = analyze_with(
        &build.program,
        Sensitivity::AndersenField,
        worklist.with_provenance(true),
    );
    let events = (enabled.provenance_facts() + enabled.provenance_edges()) as u64;
    assert!(events > 0, "the enabled solve must have recorded something");

    // Price the gate: the None branch of an opaque Option, the exact shape
    // of `if let Some(prov) = &mut self.prov` with provenance off.
    const CALLS: u64 = 10_000_000;
    let mut gate: Option<Box<u64>> = None;
    let mut acc = 0u64;
    let start = Instant::now();
    for i in 0..CALLS {
        if let Some(g) = std::hint::black_box(&mut gate) {
            acc = acc.wrapping_add(**g);
        } else {
            acc = acc.wrapping_add(i & 1);
        }
    }
    std::hint::black_box(acc);
    let gate_ns = start.elapsed().as_nanos() as f64 / CALLS as f64;

    let overhead_pct = (events as f64 * gate_ns) / (disabled_seconds * 1e9) * 100.0;
    assert!(
        overhead_pct < 2.0,
        "disabled provenance costs {overhead_pct:.4}% of a cold solve \
         ({events} gate checks x {gate_ns:.2} ns over {disabled_seconds:.6} s)"
    );
}
