//! Integration test for experiment E3: CCount free verification across boot
//! and light use, before and after the fix plan.

use ivy::core::experiments::{ccount_frees, Scale};

#[test]
fn free_verification_matches_paper_shape() {
    let scale = Scale::test();
    let r = ccount_frees(&scale);

    // The unfixed kernel verifies the vast majority of its frees but not all
    // of them (the paper reports 98.5% during light use).
    assert!(r.unfixed.total() > 50);
    assert!(r.unfixed.bad > 0);
    assert!(
        r.unfixed.good_ratio() > 0.5 && r.unfixed.good_ratio() < 1.0,
        "unfixed ratio {:.3}",
        r.unfixed.good_ratio()
    );
    // Exactly the seeded defects fail.
    assert_eq!(
        r.unfixed.bad,
        (scale.kernel.cache_defects + scale.kernel.ring_defects) as u64
    );

    // After the fix plan every free verifies.
    assert_eq!(r.fixed.bad, 0);
    assert_eq!(r.fixed.good_ratio(), 1.0);
    assert!(r.fixed.total() >= r.unfixed.total() - r.unfixed.bad);

    // The fix plan has the paper's two ingredients.
    assert_eq!(r.null_fixes, scale.kernel.cache_defects);
    assert_eq!(r.delayed_free_fixes, scale.kernel.ring_defects);
}
