//! Integration test for experiment E1 (Table 1): the deputized kernel's
//! relative performance on the hbench suite has the paper's shape.

use ivy::core::experiments::{table1_hbench, Scale};

#[test]
fn table1_reproduces_paper_shape() {
    let table = table1_hbench(&Scale::test());
    assert_eq!(table.rows.len(), 21, "Table 1 has 21 benchmarks");

    let row = |name: &str| {
        table
            .rows
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    };

    // Every benchmark pays a bounded overhead: nothing slows by 2x or more.
    for r in &table.rows {
        assert!(
            r.relative() >= 0.99,
            "{} sped up: {:.2}",
            r.name,
            r.relative()
        );
        assert!(
            r.relative() < 2.0,
            "{} slowed by {:.2}x",
            r.name,
            r.relative()
        );
    }

    // Bandwidth benchmarks are cheaper to check than the worst latency
    // benchmarks (the paper's worst cases are lat_udp / lat_tcp).
    let bw_mean: f64 = table
        .rows
        .iter()
        .filter(|r| r.name.starts_with("bw_"))
        .map(|r| r.relative())
        .sum::<f64>()
        / 8.0;
    let worst_lat = table
        .rows
        .iter()
        .filter(|r| r.name.starts_with("lat_"))
        .map(|r| r.relative())
        .fold(0.0f64, f64::max);
    assert!(
        worst_lat > bw_mean,
        "worst latency overhead ({worst_lat:.2}) should exceed mean bandwidth overhead ({bw_mean:.2})"
    );

    // The deputized kernel actually executes checks on the latency paths.
    assert!(row("lat_udp").checks_executed > 0);
    assert!(row("lat_fslayer").checks_executed > 0);

    // Overall overhead is modest (the paper's message).
    assert!(table.geomean() < 1.4, "geomean {:.2}", table.geomean());
}
