//! Integration tests for the resident analysis daemon: concurrent clients,
//! byte-identity with the batch engine, dependency-driven invalidation on
//! `notify_edit`, and warm restarts over the sharded persist directory.

use ivy::cmir::parser::parse_program;
use ivy::cmir::pretty::pretty_program;
use ivy::daemon::{Client, Daemon, DaemonConfig};
use ivy::engine::{Engine, PersistLayer};
use ivy::kernelgen::{KernelBuild, KernelConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ivy-daemon-it-{tag}-{}.sock", std::process::id()))
}

fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ivy-daemon-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The canonical kernel source: the daemon parses text, so the batch
/// comparison must analyze the identical parsed form.
fn kernel_source() -> String {
    pretty_program(&KernelBuild::generate(&KernelConfig::small()).program)
}

/// The corpus with one leaf function's body edited: `watchdog_tick`'s
/// increment changes from 1 to 2. The edit is deliberately line-count
/// preserving, so every *other* function keeps its spans and the edited
/// program's cold report is span-for-span comparable with warm replays.
fn edited_kernel_source() -> String {
    let source = kernel_source();
    let edited = source.replacen("watchdog_ticks + 1", "watchdog_ticks + 2", 1);
    assert_ne!(source, edited, "corpus must contain the watchdog increment");
    edited
}

#[test]
fn concurrent_clients_get_byte_identical_reports_matching_batch() {
    let source = kernel_source();
    let handle = Daemon::spawn(DaemonConfig::new(socket_path("concurrent"))).unwrap();
    let socket = handle.socket().clone();

    // Two clients race the same cold program through one shared engine.
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let socket = socket.clone();
            let source = source.clone();
            std::thread::spawn(move || {
                Client::connect(&socket)
                    .unwrap()
                    .analyze(&source)
                    .unwrap()
                    .diagnostics_json
            })
        })
        .collect();
    let answers: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(
        answers[0], answers[1],
        "concurrent clients must receive byte-identical diagnostics"
    );

    // And a repeat request matches too — resident state makes answers
    // fast, never different.
    let mut client = Client::connect(&socket).unwrap();
    let repeat = client.analyze(&source).unwrap();
    assert_eq!(repeat.diagnostics_json, answers[0]);
    assert!(repeat.stats.ctx_reused);

    // The daemon's answer is byte-identical to a batch engine run over
    // the same program with the same fleet.
    let program = parse_program(&source).unwrap();
    let batch = ivy::core::experiments::default_engine(0).analyze(&program);
    assert_eq!(batch.diagnostics_json(), answers[0]);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn notify_edit_invalidates_only_the_dirty_cone_and_reserves_the_rest() {
    let source = kernel_source();
    let edited = edited_kernel_source();
    let dir = cache_dir("edit");
    let handle =
        Daemon::spawn(DaemonConfig::new(socket_path("edit")).with_cache_dir(&dir)).unwrap();
    let mut client = Client::connect(handle.socket()).unwrap();

    let cold = client.analyze(&source).unwrap();
    assert!(cold.stats.cache_misses > 0, "first request is cold");

    // The edit notification: only watchdog_tick changed, and only its
    // dependency-reachable cone may be invalidated.
    let outcome = client.notify_edit(&edited).unwrap();
    let inv = &outcome.invalidation;
    assert_eq!(
        inv.changed_functions,
        vec!["watchdog_tick".to_string()],
        "exactly the edited function is dirty at the input layer"
    );
    assert!(!inv.env_changed, "a body edit leaves the environment alone");
    let total = inv.invalidated + inv.retained;
    assert!(
        inv.invalidated * 3 < total,
        "invalidated-query count must be far below the memoized total: {} of {}",
        inv.invalidated,
        total
    );
    assert!(
        inv.revalidated > 0,
        "content-keyed durable entries are revalidated, not dropped"
    );

    // Analyzing the edited program is served overwhelmingly without
    // recompute: >=90% of per-function results come from the resident
    // cache or the persist layer, and points-to regenerates exactly one
    // constraint batch.
    let warm = client.analyze(&edited).unwrap();
    let lookups = warm.stats.cache_hits + warm.stats.persist_hits + warm.stats.cache_misses;
    let served = warm.stats.cache_hits + warm.stats.persist_hits;
    assert!(
        served as f64 >= 0.9 * lookups as f64,
        "after a one-function edit >=90% must be re-served: {served} of {lookups}"
    );
    assert_eq!(
        warm.stats.pointsto_batches_generated, 1,
        "only the edited function's constraint batch regenerates"
    );

    // The answer is still pinned to the batch engine's, byte for byte.
    let batch = ivy::core::experiments::default_engine(0).analyze(&parse_program(&edited).unwrap());
    assert_eq!(batch.diagnostics_json(), warm.diagnostics_json);

    // Server counters surface the persist traffic for operators.
    let stats = client.stats().unwrap();
    assert_eq!(
        stats
            .get("edits")
            .and_then(ivy::engine::json::Value::as_u64),
        Some(1)
    );
    let persist = stats.get("persist").expect("persist section present");
    assert!(
        persist
            .get("pruned")
            .and_then(ivy::engine::json::Value::as_u64)
            .is_some(),
        "operators can watch compaction: {persist:?}"
    );
    let engine_section = stats.get("engine").expect("engine section present");
    assert!(
        engine_section
            .get("evictions")
            .and_then(ivy::engine::json::Value::as_u64)
            .is_some(),
        "operators can watch context eviction: {engine_section:?}"
    );
    assert!(
        engine_section
            .get("resident_contexts")
            .and_then(ivy::engine::json::Value::as_u64)
            .map(|n| n >= 1)
            .unwrap_or(false),
        "the analyzed program is resident: {engine_section:?}"
    );
    // Context-store traffic is surfaced next to its eviction count: this
    // session analyzed twice (one miss, one hit) and edited once.
    let ctx_count = |key: &str| {
        engine_section
            .get(key)
            .and_then(ivy::engine::json::Value::as_u64)
            .unwrap_or_else(|| panic!("{key} missing: {engine_section:?}"))
    };
    assert!(
        ctx_count("ctx_misses") >= 1,
        "cold analyze misses the store"
    );
    assert!(ctx_count("ctx_hits") >= 1, "warm analyze hits the store");
    // Per-verb request counters and uptime, for operators.
    assert!(
        stats
            .get("uptime_ms")
            .and_then(ivy::engine::json::Value::as_u64)
            .is_some(),
        "uptime is reported: {stats:?}"
    );
    let verbs = stats.get("verbs").expect("per-verb counters present");
    let verb_count = |key: &str| {
        verbs
            .get(key)
            .and_then(ivy::engine::json::Value::as_u64)
            .unwrap_or_else(|| panic!("{key} missing: {verbs:?}"))
    };
    assert_eq!(verb_count("analyze"), 2, "two analyze requests so far");
    assert_eq!(verb_count("notify_edit"), 1);
    assert_eq!(verb_count("stats"), 1, "this stats request counts itself");
    assert_eq!(verb_count("shutdown"), 0);
    // The slow-request ring is always present (possibly empty on a fast
    // machine — entries require a >=10ms request).
    assert!(
        stats
            .get("slow_requests")
            .and_then(ivy::engine::json::Value::as_array)
            .is_some(),
        "slow-request ring present: {stats:?}"
    );

    client.shutdown().unwrap();
    handle.join();

    // A *restarted* daemon over the same shard directory starts warm: the
    // persist hit rate stays high across the edit and the restart.
    let handle =
        Daemon::spawn(DaemonConfig::new(socket_path("edit-restart")).with_cache_dir(&dir)).unwrap();
    let mut client = Client::connect(handle.socket()).unwrap();
    let restarted = client.analyze(&edited).unwrap();
    assert_eq!(restarted.diagnostics_json, warm.diagnostics_json);
    assert!(
        restarted.stats.persist_hit_rate() >= 0.9,
        "restarted daemon must re-serve >=90% from the shards, got {:.3}",
        restarted.stats.persist_hit_rate()
    );
    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The corpus with the blocking call edited *out* of the watchdog
/// interrupt handler: BlockStop's seeded REAL BUG 2 finding disappears,
/// so a stale pre-edit answer is byte-visibly different from a correct
/// re-analysis — exactly what the restart test below needs to detect.
fn defused_kernel_source() -> String {
    let source = kernel_source();
    let edited = source.replacen(
        "watchdog_sync();",
        "watchdog_ticks = watchdog_ticks + 2;",
        1,
    );
    assert_ne!(source, edited, "corpus must contain the watchdog sync call");
    edited
}

#[test]
fn restarted_daemon_does_not_serve_stale_results_after_notify_edit() {
    let source = kernel_source();
    let edited = defused_kernel_source();
    let dir = cache_dir("restart-edit");

    // Session one fills the persist shards and exits.
    let handle =
        Daemon::spawn(DaemonConfig::new(socket_path("restart-edit-a")).with_cache_dir(&dir))
            .unwrap();
    let mut client = Client::connect(handle.socket()).unwrap();
    client.analyze(&source).unwrap();
    client.shutdown().unwrap();
    handle.join();

    // Session two restarts warm: whole-program durable artifacts are
    // adopted from disk without recording dependency edges, so the edit
    // walk alone cannot reach them — they must be re-keyed out instead
    // of retained.
    let handle =
        Daemon::spawn(DaemonConfig::new(socket_path("restart-edit-b")).with_cache_dir(&dir))
            .unwrap();
    let mut client = Client::connect(handle.socket()).unwrap();
    let warm = client.analyze(&source).unwrap();
    assert!(
        warm.stats.persist_hit_rate() >= 0.9,
        "the restart must actually be warm, got {:.3}",
        warm.stats.persist_hit_rate()
    );

    client.notify_edit(&edited).unwrap();
    let after = client.analyze(&edited).unwrap();
    let batch = ivy::core::experiments::default_engine(0).analyze(&parse_program(&edited).unwrap());
    assert_ne!(
        batch.diagnostics_json(),
        warm.diagnostics_json,
        "the edit must be diagnostic-visible for this test to bite"
    );
    assert_eq!(
        batch.diagnostics_json(),
        after.diagnostics_json,
        "a warm-restarted daemon must not serve pre-edit results after notify_edit"
    );

    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn edits_racing_concurrent_analyzes_never_corrupt_answers() {
    let source = kernel_source();
    let defused = defused_kernel_source();
    let batch_source = ivy::core::experiments::default_engine(0)
        .analyze(&parse_program(&source).unwrap())
        .diagnostics_json();
    let batch_defused = ivy::core::experiments::default_engine(0)
        .analyze(&parse_program(&defused).unwrap())
        .diagnostics_json();
    assert_ne!(batch_source, batch_defused);

    let handle = Daemon::spawn(DaemonConfig::new(socket_path("race"))).unwrap();
    let socket = handle.socket().clone();
    let mut client = Client::connect(&socket).unwrap();
    client.analyze(&source).unwrap();

    // One client flips the resident program back and forth while another
    // hammers analyzes of both states. The daemon serializes each edit
    // against in-flight analyzes, so every answer must match the batch
    // engine for the program it was asked about — under any interleaving.
    let editor = {
        let socket = socket.clone();
        let (source, defused) = (source.clone(), defused.clone());
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).unwrap();
            for _ in 0..10 {
                client.notify_edit(&defused).unwrap();
                client.notify_edit(&source).unwrap();
            }
        })
    };
    let analyzer = {
        let socket = socket.clone();
        let (source, defused) = (source.clone(), defused.clone());
        let (batch_source, batch_defused) = (batch_source.clone(), batch_defused.clone());
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).unwrap();
            for i in 0..20 {
                let (program, expected) = if i % 2 == 0 {
                    (&source, &batch_source)
                } else {
                    (&defused, &batch_defused)
                };
                let answer = client.analyze(program).unwrap();
                assert_eq!(
                    &answer.diagnostics_json, expected,
                    "an analyze racing edits returned a corrupted answer"
                );
            }
        })
    };
    editor.join().unwrap();
    analyzer.join().unwrap();

    let mut client = Client::connect(&socket).unwrap();
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn daemon_and_batch_writers_shard_the_persist_directory() {
    let source = kernel_source();
    let program = parse_program(&source).unwrap();
    let dir = cache_dir("shards");

    // A batch run and a daemon share one cache directory; each flushes its
    // own writer shard, so neither clobbers the other.
    let batch_layer = Arc::new(
        PersistLayer::open(&dir)
            .unwrap()
            .with_writer_id("batch-writer"),
    );
    let batch = ivy::core::experiments::default_engine(0)
        .with_persist(Arc::clone(&batch_layer))
        .analyze(&program);

    let handle =
        Daemon::spawn(DaemonConfig::new(socket_path("shards")).with_cache_dir(&dir)).unwrap();
    let mut client = Client::connect(handle.socket()).unwrap();
    let daemon_answer = client.analyze(&source).unwrap();
    assert_eq!(batch.diagnostics_json(), daemon_answer.diagnostics_json);
    assert!(
        daemon_answer.stats.persist_hit_rate() >= 0.9,
        "the daemon must start warm from the batch run's shards, got {:.3}",
        daemon_answer.stats.persist_hit_rate()
    );
    // Give the daemon something the batch run never computed, so it has
    // fresh results to flush into its own shard.
    client
        .analyze("fn daemon_only() { daemon_callee(); } fn daemon_callee() { }")
        .unwrap();
    client.shutdown().unwrap();
    handle.join();

    // Both writers' shards coexist on disk under the namespace dirs.
    let batch_shards = walk_shards(&dir, "batch-writer.json");
    let daemon_shards = walk_shards(&dir, &format!("w{}.json", std::process::id()));
    assert!(!batch_shards.is_empty(), "batch run flushed its shards");
    assert!(!daemon_shards.is_empty(), "daemon flushed its shards");
    let _ = std::fs::remove_dir_all(&dir);
}

fn walk_shards(dir: &PathBuf, file_name: &str) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .map(|ns| ns.join(file_name))
        .filter(|p| p.exists())
        .collect()
}

#[test]
fn engine_answers_survive_a_panicking_checker_thread() {
    use ivy::engine::{AnalysisCtx, Checker, Diagnostic};
    use ivy_cmir::ast::Function;

    /// A checker that panics on exactly one function — the lock-poisoning
    /// scenario a resident daemon must absorb.
    struct Grenade;
    impl Checker for Grenade {
        fn name(&self) -> &'static str {
            "grenade"
        }
        fn check_function(&self, _ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
            assert!(func.name != "watchdog_tick", "boom");
            Vec::new()
        }
    }

    let program = parse_program(&kernel_source()).unwrap();
    let engine = Engine::new().with_checker(Arc::new(Grenade));
    // The panic propagates out of this analyze (rayon joins the worker)...
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.analyze(&program)
    }))
    .is_err());
    // ...but the engine's shared locks recovered: the same engine still
    // answers later requests instead of panicking on poisoned state.
    let healthy = ivy::core::experiments::default_engine(1)
        .with_cache(engine.cache())
        .with_ctx_store(engine.ctx_store())
        .analyze(&program);
    assert!(!healthy.diagnostics.is_empty());
}

#[test]
fn metrics_verb_returns_prometheus_text_covering_the_serving_path() {
    let source = kernel_source();
    let handle = Daemon::spawn(DaemonConfig::new(socket_path("metrics"))).unwrap();
    let mut client = Client::connect(handle.socket()).unwrap();

    // One cold analyze (cache miss), one warm (cache hit), then an edit
    // round-trip so the incremental points-to re-solve reuses the untouched
    // constraint batches — every series the scrape asserts on is nonzero.
    client.analyze(&source).unwrap();
    client.analyze(&source).unwrap();
    client.notify_edit(&edited_kernel_source()).unwrap();
    client.analyze(&edited_kernel_source()).unwrap();
    let text = client.metrics().unwrap();

    // Prometheus exposition shape: every sample line is `name{labels} value`
    // with a preceding `# TYPE` header.
    assert!(text.contains("# TYPE ivy_daemon_requests_served_total counter"));
    for needle in [
        // Request counts, overall and per verb: three analyzes, one
        // notify_edit, and this metrics request (counted before dispatch).
        "ivy_daemon_requests_served_total 5",
        "ivy_daemon_verb_requests_total{verb=\"analyze\"} 3",
        // Query cache: the warm analyze hit what the cold one filled.
        "ivy_daemon_cache_misses_total",
        "ivy_daemon_cache_hits_total",
        // Points-to batch reuse across the two analyzes.
        "ivy_daemon_pointsto_batch_hits_total",
        // Uptime gauge.
        "ivy_daemon_uptime_seconds",
    ] {
        assert!(
            text.contains(needle),
            "metrics text missing {needle:?}:\n{text}"
        );
    }

    // The cache series carry real traffic, not just zeros: parse the values.
    let series_value = |name: &str| -> u64 {
        text.lines()
            .find(|line| line.starts_with(name) && !line.starts_with('#'))
            .and_then(|line| line.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("series {name} absent or non-numeric:\n{text}"))
    };
    assert!(series_value("ivy_daemon_cache_hits_total") >= 1);
    assert!(series_value("ivy_daemon_cache_misses_total") >= 1);
    assert!(series_value("ivy_daemon_pointsto_batch_hits_total") >= 1);

    // Per-verb latency histograms: the analyze verb served three requests,
    // so its histogram must expose cumulative buckets, a +Inf bucket equal
    // to the count, and p50/p95/p99 summary gauges.
    assert!(
        text.contains("# TYPE ivy_daemon_request_duration_micros histogram"),
        "latency histogram header missing:\n{text}"
    );
    let bucket_value = |line: &str| -> u64 {
        line.rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("non-numeric bucket line {line:?}"))
    };
    let analyze_buckets: Vec<u64> = text
        .lines()
        .filter(|l| {
            l.starts_with("ivy_daemon_request_duration_micros_bucket{verb=\"analyze\"")
                && !l.contains("le=\"+Inf\"")
        })
        .map(bucket_value)
        .collect();
    assert_eq!(
        analyze_buckets.len(),
        12,
        "one bucket line per fixed bound:\n{text}"
    );
    for pair in analyze_buckets.windows(2) {
        assert!(
            pair[0] <= pair[1],
            "cumulative bucket counts must be monotone non-decreasing: {analyze_buckets:?}"
        );
    }
    let analyze_count = series_value("ivy_daemon_request_duration_micros_count{verb=\"analyze\"}");
    assert_eq!(analyze_count, 3, "three analyze requests were timed");
    let inf_line = text
        .lines()
        .find(|l| {
            l.starts_with("ivy_daemon_request_duration_micros_bucket{verb=\"analyze\"")
                && l.contains("le=\"+Inf\"")
        })
        .expect("+Inf bucket present");
    assert_eq!(
        bucket_value(inf_line),
        analyze_count,
        "+Inf bucket equals the observation count"
    );
    assert!(analyze_buckets.iter().all(|&c| c <= analyze_count));
    for quantile in ["p50", "p95", "p99"] {
        assert!(
            text.contains(&format!(
                "ivy_daemon_request_{quantile}_micros{{verb=\"analyze\"}}"
            )),
            "{quantile} summary gauge missing:\n{text}"
        );
    }

    client.shutdown().unwrap();
    handle.join();
}

/// A small program with one function-pointer dispatch and one global
/// pointer slot — enough surface for `explain` to answer in both modes.
const EXPLAIN_SOURCE: &str = r#"
    global sink: u8 *;
    fn store(p: u8 *) { sink = p; }
    global hook: fnptr(u8 *) -> void;
    global data: u8[8];
    fn setup() { hook = store; }
    fn fire() { hook(&data[0]); }
"#;

#[test]
fn explain_verb_returns_replay_verified_derivations() {
    let handle =
        Daemon::spawn(DaemonConfig::new(socket_path("explain")).with_provenance(true)).unwrap();
    let mut client = Client::connect(handle.socket()).unwrap();

    // Explain before any analyze is a clean error, not a hang or a panic.
    let err = client.explain("fire", "hook", None).unwrap_err();
    assert!(err.to_string().contains("nothing is resident"), "{err}");

    client.analyze(EXPLAIN_SOURCE).unwrap();

    // Indirect-call mode: why does `hook(...)` in `fire` reach `store`?
    let indirect = client.explain("fire", "hook", Some("store")).unwrap();
    assert!(indirect.replay_verified);
    assert!(!indirect.rendered.is_empty(), "chain must be non-empty");
    assert!(indirect.provenance_facts > 0);
    // Chains are seed-first: the first link is an addr-of seed.
    assert!(
        indirect.rendered[0].contains("addr-of seed"),
        "chain starts at a seed: {:?}",
        indirect.rendered
    );

    // Pointer-slot mode: why may `sink` point into `data`? The flow runs
    // through the indirect call's argument binding, so the chain has more
    // than one link.
    let slot = client.explain("store", "sink", None).unwrap();
    assert!(slot.replay_verified);
    assert!(
        slot.chain_len > 1,
        "flow through a call: {:?}",
        slot.rendered
    );
    assert!(slot.fact.contains("sink"), "{}", slot.fact);

    // A target the static answer does not contain is an error that lists
    // what the answer does hold.
    let err = client.explain("fire", "hook", Some("setup")).unwrap_err();
    assert!(err.to_string().contains("store"), "{err}");

    // The stats verb surfaces the provenance volume of the last analyze.
    let stats = client.stats().unwrap();
    let engine_section = stats.get("engine").expect("engine section");
    assert!(
        engine_section
            .get("provenance_facts")
            .and_then(ivy::engine::json::Value::as_u64)
            .map(|n| n > 0)
            .unwrap_or(false),
        "provenance_facts surfaced: {engine_section:?}"
    );
    assert!(
        engine_section
            .get("provenance_bytes")
            .and_then(ivy::engine::json::Value::as_u64)
            .map(|n| n > 0)
            .unwrap_or(false),
        "provenance_bytes surfaced: {engine_section:?}"
    );

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn explain_without_provenance_is_a_clean_error_and_stats_report_zero() {
    let handle = Daemon::spawn(DaemonConfig::new(socket_path("no-prov"))).unwrap();
    let mut client = Client::connect(handle.socket()).unwrap();
    client.analyze(EXPLAIN_SOURCE).unwrap();
    let err = client.explain("fire", "hook", None).unwrap_err();
    assert!(err.to_string().contains("--provenance"), "{err}");
    let stats = client.stats().unwrap();
    let engine_section = stats.get("engine").expect("engine section");
    assert_eq!(
        engine_section
            .get("provenance_facts")
            .and_then(ivy::engine::json::Value::as_u64),
        Some(0),
        "provenance off reports zero facts: {engine_section:?}"
    );
    client.shutdown().unwrap();
    handle.join();
}
