//! Integration test for experiment E4: CCount overheads for fork and module
//! loading on UP and SMP kernels.

use ivy::core::experiments::{ccount_overhead, Scale};

#[test]
fn ccount_overhead_ordering_matches_paper() {
    let o = ccount_overhead(&Scale::test());
    // All overheads are positive.
    assert!(o.fork_up.percent() > 0.0);
    assert!(o.fork_smp.percent() > 0.0);
    assert!(o.module_up.percent() > 0.0);
    assert!(o.module_smp.percent() > 0.0);
    // SMP (locked refcount operations) costs more than UP for both workloads.
    assert!(o.fork_smp.percent() > o.fork_up.percent());
    assert!(o.module_smp.percent() >= o.module_up.percent());
    // Fork is hurt much more than module loading on SMP (19%/63% vs 8%/12%
    // in the paper): pointer-dense page-table copying vs bulk text copying.
    assert!(o.fork_smp.percent() > o.module_smp.percent());
    // Nothing explodes: overheads stay under 2x even on SMP.
    assert!(
        o.fork_smp.ratio() < 2.0,
        "fork SMP ratio {:.2}",
        o.fork_smp.ratio()
    );
}
