//! Integration tests for the telemetry layer as the engine actually uses
//! it: spans nest correctly across engine layers, disabled mode records
//! nothing and stays within its overhead budget on the warm path, and the
//! Chrome trace-event export round-trips through a JSON parser.

use ivy::core::experiments::default_engine;
use ivy::kernelgen::{KernelBuild, KernelConfig};
use ivy::telemetry;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Telemetry state is process-global and the test binary is threaded:
/// every test takes this lock, and restores the disabled default on exit.
fn telemetry_guard() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the disabled-and-empty default even when a test panics.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        telemetry::disable_all();
        telemetry::reset();
    }
}

#[test]
fn engine_spans_nest_across_layers() {
    let _g = telemetry_guard();
    let _restore = Restore;
    telemetry::disable_all();
    telemetry::reset();
    telemetry::enable_all();

    let build = KernelBuild::generate(&KernelConfig::small());
    default_engine(2).analyze(&build.program);
    let spans = telemetry::spans_snapshot();

    // Every layer shows up: the engine roof, the per-level waves, the
    // checker leaves, and the points-to solver phases underneath.
    for cat in [
        "engine/analyze",
        "engine/wave",
        "engine/checker",
        "pointsto/seed",
        "pointsto/propagate",
    ] {
        assert!(
            spans.iter().any(|s| s.cat == cat),
            "no {cat} span recorded; cats: {:?}",
            spans
                .iter()
                .map(|s| s.cat)
                .collect::<std::collections::BTreeSet<_>>()
        );
    }

    // Nesting: each wave span sits strictly inside the analyze span on the
    // same thread, one level deeper.
    let analyze = spans
        .iter()
        .find(|s| s.cat == "engine/analyze")
        .expect("analyze span");
    let wave = spans
        .iter()
        .find(|s| s.cat == "engine/wave" && s.tid == analyze.tid)
        .expect("wave span on the analyze thread");
    assert!(wave.depth > analyze.depth, "waves nest under analyze");
    assert!(wave.start_us >= analyze.start_us);
    assert!(wave.start_us + wave.dur_us <= analyze.start_us + analyze.dur_us);
}

#[test]
fn disabled_mode_records_nothing_and_meets_the_overhead_budget() {
    let _g = telemetry_guard();
    let _restore = Restore;
    telemetry::disable_all();
    telemetry::reset();

    // A full cold+warm engine pass with telemetry disabled leaves the
    // recorder byte-empty: no spans, no counters, no drops.
    let build = KernelBuild::generate(&KernelConfig::small());
    let engine = default_engine(2);
    engine.analyze(&build.program);
    engine.analyze(&build.program);
    assert!(telemetry::spans_snapshot().is_empty());
    assert!(telemetry::counters_snapshot().is_empty());
    assert_eq!(telemetry::dropped_spans(), 0);

    // Overhead budget on the warm path (the table8 methodology): count the
    // events one fully-enabled warm run records, price each at the measured
    // disabled-gate cost, and compare against the disabled warm wall time.
    let warm_seconds = {
        let start = Instant::now();
        engine.analyze(&build.program);
        start.elapsed().as_secs_f64()
    };
    telemetry::enable_all();
    engine.analyze(&build.program);
    let events = 2 * (telemetry::spans_snapshot().len() as u64 + telemetry::dropped_spans())
        + telemetry::counters_snapshot().len() as u64;
    telemetry::disable_all();
    telemetry::reset();
    assert!(events > 0, "the enabled run must have recorded something");

    const CALLS: u64 = 1_000_000;
    let start = Instant::now();
    for _ in 0..CALLS {
        let span = telemetry::span("test/gate", "disabled");
        std::hint::black_box(&span);
        telemetry::counter("ivy_test_gate_total", 1);
    }
    // Each iteration checks the gate twice: once for the span, once for
    // the counter.
    let gate_ns = start.elapsed().as_nanos() as f64 / (2 * CALLS) as f64;

    let overhead_pct = (events as f64 * gate_ns) / (warm_seconds * 1e9) * 100.0;
    assert!(
        overhead_pct < 2.0,
        "disabled telemetry costs {overhead_pct:.4}% of the warm path \
         ({events} events x {gate_ns:.2} ns over {warm_seconds:.6} s)"
    );
}

#[test]
fn span_cap_overflow_counts_drops_without_corrupting_retained_spans() {
    let _g = telemetry_guard();
    let _restore = Restore;
    telemetry::disable_all();
    telemetry::reset();
    telemetry::enable_spans();

    // One thread always lands in one recorder shard, so a single runaway
    // traced loop overflows that shard's cap deterministically. A sentinel
    // span recorded first must come through the overflow untouched.
    {
        let _sentinel = telemetry::span("test/sentinel", "first");
    }
    const CAP: u64 = 1 << 16; // SPAN_CAP_PER_SHARD
    const EXTRA: u64 = 100;
    for i in 0..(CAP - 1 + EXTRA) {
        let _s = telemetry::span("test/flood", format!("s{i}"));
    }

    // Every span past the cap was dropped and counted — no more, no fewer.
    assert_eq!(telemetry::dropped_spans(), EXTRA);
    let spans = telemetry::spans_snapshot();
    assert_eq!(spans.len() as u64, CAP, "shard retains exactly its cap");

    // The retained records are intact: the sentinel survived, and the
    // flood spans that made it in are exactly the first CAP-1 (overflow
    // dropped the tail, never overwrote the body). Snapshot order ties on
    // equal-microsecond timestamps, so check membership, not positions.
    assert_eq!(
        spans.iter().filter(|s| s.cat == "test/sentinel").count(),
        1,
        "the sentinel span survived the overflow"
    );
    let flood: std::collections::BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.cat == "test/flood")
        .map(|s| s.name[1..].parse().expect("flood span name"))
        .collect();
    assert_eq!(flood.len() as u64, CAP - 1, "no flood span was duplicated");
    assert_eq!(flood.first(), Some(&0));
    assert_eq!(
        flood.last(),
        Some(&(CAP - 2)),
        "exactly the tail was dropped"
    );

    // A fresh span after the overflow is still dropped (the shard stays
    // full) and keeps counting, rather than evicting or panicking.
    {
        let _late = telemetry::span("test/late", "after-overflow");
    }
    assert_eq!(telemetry::dropped_spans(), EXTRA + 1);
    assert_eq!(telemetry::spans_snapshot().len() as u64, CAP);
}

#[test]
fn chrome_trace_export_round_trips_through_serde_json() {
    let _g = telemetry_guard();
    let _restore = Restore;
    telemetry::disable_all();
    telemetry::reset();
    telemetry::enable_spans();

    {
        let _outer = telemetry::span("test/outer", "parent \"quoted\" \\ name");
        let _inner = telemetry::span("test/inner", "child");
    }
    let json = telemetry::chrome_trace_json();
    let value: serde_json::Value = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("chrome trace is not valid JSON ({e}): {json}"));

    let events = value
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), 2, "both spans exported: {json}");
    for event in events {
        // Complete-event records with every field Perfetto needs.
        assert_eq!(
            event.get("ph").and_then(serde_json::Value::as_str),
            Some("X")
        );
        for key in ["name", "cat", "pid", "tid", "ts", "dur"] {
            assert!(event.get(key).is_some(), "{key} missing from {event:?}");
        }
    }
    // The escaped name survived the round trip verbatim.
    assert!(events.iter().any(|e| {
        e.get("name").and_then(serde_json::Value::as_str) == Some("parent \"quoted\" \\ name")
    }));
    // Inner closed before outer, so it is exported first and one level deep.
    let inner = events
        .iter()
        .find(|e| e.get("cat").and_then(serde_json::Value::as_str) == Some("test/inner"))
        .expect("inner span present");
    assert_eq!(
        inner
            .get("args")
            .and_then(|a| a.get("depth"))
            .and_then(serde_json::Value::as_u64),
        Some(1)
    );
}
