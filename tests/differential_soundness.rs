//! Differential *soundness* testing of every static analysis against
//! traced executions, in the spirit of Klinger et al.: generate random
//! programs, execute them on the VM with the dynamic-fact tracer attached,
//! and require that every concrete fact is subsumed by the static answers
//! at every sensitivity (points-to, indirect-call targets, BlockStop
//! coverage of blocking-in-atomic events, CCount coverage of bad frees).
//!
//! Programs are kernelgen corpora randomly sub-sampled exactly like the
//! solver-equivalence property test (whole functions dropped, bodies
//! turned extern), so each case exercises a different constraint graph
//! *and* a different executable subset — dropped callees degrade to no-op
//! externs, traps truncate the trace, and the surviving facts must still
//! be covered. Any violation fails with a minimized reproducer.
//!
//! CI runs this file explicitly and fails if it is filtered out or
//! renamed away (see `.github/workflows/ci.yml`).

use ivy::cmir::ast::Program;
use ivy::kernelgen::{subsample_program, KernelBuild, KernelConfig};
use ivy::oracle::{EntrySpec, Oracle, OracleConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Cases per property. Each case runs one traced execution session and
/// checks all three sensitivities, so every sensitivity level sees this
/// many generated programs (the acceptance floor is 100 per level).
const CASES: u32 = 110;

fn base_kernels() -> &'static Vec<Program> {
    static BASES: OnceLock<Vec<Program>> = OnceLock::new();
    BASES.get_or_init(|| {
        let mut tiny = KernelConfig::small();
        tiny.drivers = 1;
        tiny.fp_groups = 1;
        tiny.cache_defects = 1;
        tiny.ring_defects = 1;
        vec![
            KernelBuild::generate(&tiny).program,
            KernelBuild::generate(&KernelConfig::small()).program,
        ]
    })
}

/// Entries for a sub-sampled program: the boot session when it survived
/// the sampling (short: three cycles keep the per-case cost bounded),
/// otherwise whatever integer-parameter functions remain.
fn entries_for(program: &Program) -> Vec<EntrySpec> {
    let boot_defined = program
        .function("kernel_boot")
        .map(|f| f.body.is_some())
        .unwrap_or(false);
    if boot_defined {
        let mut out = vec![EntrySpec::new("kernel_boot", &[3, 0])];
        for wl in ["wl_bw_pipe", "wl_lat_fs"] {
            if program
                .function(wl)
                .map(|f| f.body.is_some())
                .unwrap_or(false)
            {
                out.push(EntrySpec::new(wl, &[2, 64]));
            }
        }
        return out;
    }
    EntrySpec::defaults_for(program, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn traced_executions_are_subsumed_by_every_static_analysis(
        seed in any::<u64>(),
        base_idx in 0usize..2,
        drop_pct in 0u64..40,
        strip_pct in 0u64..35,
    ) {
        // Route the oracle's points-to solves through the new solver
        // family: >1 thread makes automatic dispatch pick the parallel
        // wavefront for the subset-based sensitivities (Steensgaard
        // always unifies), so the soundness gate covers them too.
        std::env::set_var("IVY_THREADS", "4");
        let bases = base_kernels();
        let program = subsample_program(&bases[base_idx], seed, drop_pct, strip_pct);
        let entries = entries_for(&program);
        let oracle = Oracle::with_config(OracleConfig {
            max_steps: 1_500_000,
            minimize_budget: 32,
            ..OracleConfig::default()
        });
        let report = oracle.run(&program, &entries);
        prop_assert!(
            report.is_sound(),
            "soundness violations on sub-sample (seed {seed}, base {base_idx}, \
             drop {drop_pct}%, strip {strip_pct}%):\n{}",
            report.render()
        );
        // All three sensitivities were actually checked.
        prop_assert_eq!(report.precision.len(), 3);
    }
}
