//! Integration test for experiment E2: annotation burden of the conversion.

use ivy::core::experiments::{deputy_burden, Scale};

#[test]
fn annotation_burden_is_a_small_fraction_of_the_kernel() {
    let r = deputy_burden(&Scale::test());
    assert!(r.total_lines > 1_000, "corpus too small: {}", r.total_lines);
    // The paper: ~0.6% annotated, <0.8% trusted. Our corpus is denser in
    // annotated subsystems, so allow a looser bound while keeping the
    // "small fraction" shape.
    assert!(
        r.burden.annotated_fraction() < 0.10,
        "{}",
        r.burden.annotated_fraction()
    );
    assert!(
        r.burden.trusted_fraction() < 0.05,
        "{}",
        r.burden.trusted_fraction()
    );
    assert!(r.burden.annotated_lines > 0);
    assert!(r.burden.trusted_lines > 0);
    assert!(r.burden.trusted_functions >= 2);
    // The conversion is accepted and hybrid: some checks static, some dynamic.
    assert!(r.conversion.accepted(), "{:?}", r.conversion.diagnostics);
    assert!(r.conversion.static_discharged > 0);
    assert!(r.conversion.total_runtime_checks() > 0);
}
