//! Integration test for experiment E7: the §3.1 extension analyses run on the
//! same corpus and produce sensible results.

use ivy::core::experiments::{extensions, Scale};

#[test]
fn extension_analyses_produce_findings() {
    let r = extensions(&Scale::test());

    // Lock safety: the corpus locks consistently, so no order violations, and
    // locks taken in interrupt handlers are known.
    assert!(
        r.locks.order_violations.is_empty(),
        "{:?}",
        r.locks.order_violations
    );

    // Stack bounds: every syscall/workload entry point gets a bound and fits
    // in 8 kB; recursive functions are identified separately.
    assert!(!r.stack.per_entry.is_empty());
    assert!(r.stack.over_budget.is_empty(), "{:?}", r.stack.over_budget);
    assert!(r.stack.per_entry.values().all(|d| *d > 0));

    // Error codes: the corpus has error-returning functions, and some calls
    // discard their results (findings for the error-code checker).
    assert!(!r.errors.error_returning.is_empty());
    assert!(r.errors.checked_sites > 0);
}
