//! Integration tests for the analysis engine over the generated kernel:
//! parallel determinism, incremental caching, dirty-cone invalidation, and
//! fleet (corpus) mode.

use ivy::blockstop::BlockStopChecker;
use ivy::ccount::CCountChecker;
use ivy::deputy::DeputyChecker;
use ivy::engine::{Engine, PersistLayer, Severity};
use ivy::kernelgen::{KernelBuild, KernelConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn kernel_engine(threads: usize) -> Engine {
    Engine::new()
        .with_threads(threads)
        .with_checker(Arc::new(DeputyChecker::new()))
        .with_checker(Arc::new(CCountChecker::new()))
        .with_checker(Arc::new(BlockStopChecker::new()))
}

/// A unique, empty persist directory for one test.
fn persist_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ivy-engine-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parallel_run_is_byte_identical_to_single_threaded() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let single = kernel_engine(1).analyze(&build.program);
    let parallel = kernel_engine(4).analyze(&build.program);
    assert!(!single.diagnostics.is_empty());
    assert_eq!(single.diagnostics, parallel.diagnostics);
    assert_eq!(single.diagnostics_json(), parallel.diagnostics_json());
    assert_eq!(single.to_sarif(), parallel.to_sarif());
}

#[test]
fn unchanged_kernel_is_served_from_cache() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let engine = kernel_engine(4);
    let cold = engine.analyze(&build.program);
    assert_eq!(cold.stats.cache_hits, 0, "first run must be cold");
    assert!(cold.stats.cache_misses > 0);

    let warm = engine.analyze(&build.program);
    assert_eq!(warm.diagnostics, cold.diagnostics);
    assert!(
        warm.stats.ctx_reused,
        "identical program must reuse the analysis context"
    );
    assert!(
        warm.stats.hit_rate() >= 0.9,
        "second analyze over an unchanged kernel must be >=90% cache-served, got {:.3} ({} hits, {} misses)",
        warm.stats.hit_rate(),
        warm.stats.cache_hits,
        warm.stats.cache_misses
    );
}

#[test]
fn small_edit_recomputes_only_the_dirty_cone() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let engine = kernel_engine(4);
    engine.analyze(&build.program);

    // Edit one leaf-ish function body; everything outside its caller cone
    // keeps its cache entries. Deputy and CCount are per-function, so for
    // them only the dirty cone misses; BlockStop re-derives its
    // whole-program context but still reuses entries whose findings are
    // unchanged.
    let mut edited = build.program.clone();
    let func = edited
        .function_mut("watchdog_tick")
        .expect("corpus has watchdog_tick");
    let body = func.body.as_mut().expect("defined");
    let extra = body.stmts.first().cloned().expect("non-empty body");
    body.stmts.insert(0, extra);

    let incremental = engine.analyze(&edited);
    let total = incremental.stats.cache_hits + incremental.stats.cache_misses;
    assert!(
        incremental.stats.cache_hits * 2 > total,
        "a one-function edit should keep most entries cached: {} hits / {} lookups",
        incremental.stats.cache_hits,
        total
    );
    assert!(
        incremental.stats.cache_misses > 0,
        "the dirty function itself must recompute"
    );
    // The points-to substrate is incremental across contexts too: the
    // edited program's solve regenerates exactly one constraint batch.
    assert_eq!(
        incremental.stats.pointsto_batches_generated, 1,
        "only the edited function's constraint batch is dirty"
    );
    assert!(incremental.stats.pointsto_batches_reused > 0);
}

#[test]
fn reports_carry_pointsto_substrate_stats() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let report = kernel_engine(1).analyze(&build.program);
    assert!(report.stats.pointsto_initial_constraints > 0);
    assert!(
        report.stats.pointsto_constraints > report.stats.pointsto_initial_constraints,
        "indirect-call bindings must be counted in the total ({} vs {})",
        report.stats.pointsto_constraints,
        report.stats.pointsto_initial_constraints
    );
    // A cold engine generated every batch fresh.
    assert_eq!(report.stats.pointsto_batches_reused, 0);
    assert!(report.stats.pointsto_batches_generated > 0);
    // The stats serialize into the report JSON.
    assert!(report.to_json().contains("pointsto_batches_generated"));
}

#[test]
fn corpus_mode_shares_the_cache_across_variants() {
    // Seed-varied kernels share almost all function bodies.
    let programs: Vec<_> = (0..3)
        .map(|i| {
            let mut config = KernelConfig::small();
            config.seed += i;
            KernelBuild::generate(&config).program
        })
        .collect();
    let engine = kernel_engine(4);
    let reports = engine.analyze_corpus(&programs);
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert!(!r.diagnostics.is_empty());
    }
    let hits: u64 = reports.iter().map(|r| r.stats.cache_hits).sum();
    let misses: u64 = reports.iter().map(|r| r.stats.cache_misses).sum();
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate > 0.5,
        "cross-variant sharing too low: {rate:.3} ({hits} hits, {misses} misses)"
    );

    // Corpus reports equal the individually-computed ones.
    let solo = kernel_engine(1).analyze(&programs[1]);
    assert_eq!(solo.diagnostics, reports[1].diagnostics);
}

#[test]
fn warm_start_from_persist_layer_reproduces_the_report_from_disk() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let dir = persist_dir("warm-start");

    // "Process A": cold engine, spills everything durable to the directory.
    let cold = kernel_engine(4)
        .with_persist(Arc::new(PersistLayer::open(&dir).unwrap()))
        .analyze(&build.program);
    assert_eq!(cold.stats.persist_hits, 0, "first process is cold");
    assert!(cold.stats.persist_misses > 0);

    // "Process B": a fresh engine with fresh in-memory caches; only the
    // directory is shared (everything process A held has been dropped).
    let warm = kernel_engine(4)
        .with_persist(Arc::new(PersistLayer::open(&dir).unwrap()))
        .analyze(&build.program);

    // Byte-identical report, served overwhelmingly from disk.
    assert_eq!(warm.diagnostics, cold.diagnostics);
    assert_eq!(warm.diagnostics_json(), cold.diagnostics_json());
    assert_eq!(warm.to_sarif(), cold.to_sarif());
    assert_eq!(
        warm.stats.cache_hits, 0,
        "process B's memory caches are empty"
    );
    assert!(
        warm.stats.persist_hit_rate() >= 0.9,
        "a warm process must serve >=90% of per-function results from disk, got {:.3} ({} persist hits, {} misses)",
        warm.stats.persist_hit_rate(),
        warm.stats.persist_hits,
        warm.stats.cache_misses
    );
    // The warm process never had to solve points-to: the summaries, the
    // BlockStop report, and the CCount alias sites all reloaded from disk.
    assert_eq!(
        warm.stats.pointsto_constraints, 0,
        "a fully warm process must not solve points-to"
    );
    assert!(cold.stats.pointsto_constraints > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_version_mismatched_cache_files_are_ignored_not_fatal() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let dir = persist_dir("corrupt");
    let cold = kernel_engine(2)
        .with_persist(Arc::new(PersistLayer::open(&dir).unwrap()))
        .analyze(&build.program);

    // Vandalize the cache: truncate one shard mid-JSON, replace another
    // with a version from the future, and drop in unrelated files at both
    // layout levels. (Namespaces are shard *directories* since the
    // fleet-mode sharding rework; the shards inside are what a crashed or
    // hostile writer would corrupt.)
    let mut shards: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .flat_map(|ns| std::fs::read_dir(ns).unwrap().map(|e| e.unwrap().path()))
        .collect();
    shards.sort();
    assert!(shards.len() >= 3, "cold run persisted several namespaces");
    std::fs::write(&shards[0], "{\"format\":1,\"entries\":{").unwrap();
    std::fs::write(
        &shards[1],
        "{\"format\":1,\"namespace\":\"x\",\"version\":999,\"entries\":{}}",
    )
    .unwrap();
    std::fs::write(shards[2].parent().unwrap().join("stray.json"), "not json").unwrap();
    std::fs::write(dir.join("unrelated.json"), "not json at all").unwrap();

    // A fresh process over the damaged cache recomputes what it must and
    // still produces the identical report.
    let recovered = kernel_engine(2)
        .with_persist(Arc::new(PersistLayer::open(&dir).unwrap()))
        .analyze(&build.program);
    assert_eq!(recovered.diagnostics, cold.diagnostics);
    assert_eq!(recovered.diagnostics_json(), cold.diagnostics_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persisted_deputy_bodies_make_redeputization_incremental() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let dir = persist_dir("deputy-incremental");
    let layer = Arc::new(PersistLayer::open(&dir).unwrap());
    let engine = kernel_engine(2).with_persist(Arc::clone(&layer));
    engine.analyze(&build.program);
    let instrumented_ns = "deputy/instrumented";
    let version = 1;
    let before = layer.entry_count(instrumented_ns, version);
    assert!(before > 0, "cold run persisted instrumented bodies");

    // Edit one function body; only its instrumented body is regenerated
    // (its content hash changed; every other function's entry is still
    // valid because the type environment is untouched).
    let mut edited = build.program.clone();
    let func = edited
        .function_mut("watchdog_tick")
        .expect("corpus has watchdog_tick");
    let body = func.body.as_mut().expect("defined");
    let extra = body.stmts.first().cloned().expect("non-empty body");
    body.stmts.insert(0, extra);
    engine.analyze(&edited);
    let after = layer.entry_count(instrumented_ns, version);
    assert_eq!(
        after,
        before + 1,
        "a one-function edit must add exactly one instrumented-body entry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression guard for the PR 4 round-2 adopted-entry fix, extended to
/// *sequences* of edits: edit → analyze → edit → analyze must retain at
/// least 90% of memoized results at every step, and the answers must
/// stay byte-identical to a from-scratch batch engine at every step (no
/// adopted-entry staleness reappearing after the second edit).
#[test]
fn edit_sequences_keep_retention_high_and_answers_fresh() {
    let build = KernelBuild::generate(&KernelConfig::small());

    let edit_step = |program: &ivy::cmir::Program, target: &str| {
        let mut edited = program.clone();
        let func = edited
            .function_mut(target)
            .unwrap_or_else(|| panic!("corpus has {target}"));
        let body = func.body.as_mut().expect("defined");
        let extra = body.stmts.first().cloned().expect("non-empty body");
        body.stmts.insert(0, extra);
        edited
    };

    // Phase A — in-process entries (recorded dependency edges): every
    // step of the sequence retains >=90% of the memoized results and
    // re-serves >=90% on the follow-up analyze, byte-identical to batch.
    let engine = kernel_engine(2);
    engine.analyze(&build.program);
    let (mut ctx, _) = engine.context_for(&build.program);
    let mut current = build.program.clone();
    for (step, target) in ["watchdog_tick", "dcache_lookup"].iter().enumerate() {
        let edited = edit_step(&current, target);
        let (next, stats) = engine.apply_edit(&ctx, &edited);
        assert!(
            stats.retention_rate() >= 0.9,
            "step {step}: retention collapsed to {:.3} ({} invalidated, {} retained)",
            stats.retention_rate(),
            stats.invalidated,
            stats.retained
        );
        assert!(
            stats.invalidated > 0,
            "step {step}: the edited function must invalidate something"
        );

        let incremental = engine.analyze(&edited);
        let scratch = kernel_engine(1).analyze(&edited);
        assert_eq!(
            incremental.diagnostics_json(),
            scratch.diagnostics_json(),
            "step {step}: incremental answers drifted from batch"
        );
        let served = incremental.stats.cache_hits + incremental.stats.persist_hits;
        let total = served + incremental.stats.cache_misses;
        assert!(
            served as f64 / total as f64 >= 0.9,
            "step {step}: only {:.3} re-served after the edit",
            served as f64 / total as f64
        );

        ctx = next;
        current = edited;
    }

    // Phase B — *adopted* entries (loaded from the persist shards, no
    // recorded edges: the PR 4 round-2 staleness class). A warm-started
    // engine pushed through the same edit sequence must never re-serve a
    // pre-edit result, at either step.
    let dir = persist_dir("edit-sequence");
    kernel_engine(2)
        .with_persist(Arc::new(PersistLayer::open(&dir).unwrap()))
        .analyze(&build.program);
    let warm = kernel_engine(2).with_persist(Arc::new(PersistLayer::open(&dir).unwrap()));
    let report = warm.analyze(&build.program);
    assert!(
        report.stats.persist_hit_rate() >= 0.9,
        "phase B precondition: the engine is persist-warm"
    );
    let (mut ctx, _) = warm.context_for(&build.program);
    let mut current = build.program.clone();
    for (step, target) in ["watchdog_tick", "dcache_lookup"].iter().enumerate() {
        let edited = edit_step(&current, target);
        let (next, _) = warm.apply_edit(&ctx, &edited);
        let incremental = warm.analyze(&edited);
        let scratch = kernel_engine(1).analyze(&edited);
        assert_eq!(
            incremental.diagnostics_json(),
            scratch.diagnostics_json(),
            "step {step}: adopted-entry staleness resurfaced"
        );
        ctx = next;
        current = edited;
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_finds_the_seeded_blocking_bugs() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let report = kernel_engine(0).analyze(&build.program);
    let blockstop_errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.checker == "blockstop" && d.severity == Severity::Error)
        .collect();
    assert!(!blockstop_errors.is_empty());
    for bug in &build.ground_truth.blocking_bugs {
        assert!(
            blockstop_errors
                .iter()
                .any(|d| d.function == bug.caller || d.message.contains(&bug.caller)),
            "seeded bug in {} not surfaced",
            bug.caller
        );
    }
    // Every blockstop error carries an actionable fix hint.
    assert!(blockstop_errors.iter().all(|d| d.fix_hint.is_some()));
}
